/** @file Tests for the assembled network fabric. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "network/network.hh"

using namespace oenet;

namespace {

struct SinkProbe : PacketSink
{
    std::vector<Flit> tails;
    void packetEjected(const Flit &tail, Cycle) override
    {
        tails.push_back(tail);
    }
};

Network::Params
smallParams()
{
    Network::Params p;
    p.topo.meshX = 2;
    p.topo.meshY = 2;
    p.topo.clusterSize = 2;
    return p;
}

} // namespace

TEST(Network, ConstructionCounts)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    EXPECT_EQ(net.numRouters(), 4);
    EXPECT_EQ(net.numNodes(), 8);
    // 8 inj + 8 ej + 2*2*(1*2) = 8 inter-router.
    EXPECT_EQ(net.numLinks(), 24u);
}

TEST(Network, PaperScaleConstruction)
{
    Kernel kernel;
    Network::Params p; // defaults: 8x8x8
    Network net(kernel, p);
    EXPECT_EQ(net.numNodes(), 512);
    EXPECT_EQ(net.numLinks(), 1248u);
    // Baseline power: 1248 links at ~291 mW.
    EXPECT_NEAR(net.baselinePowerMw(), 1248 * 291.25, 1.0);
}

TEST(Network, DeliversSinglePacket)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    SinkProbe sink;
    net.setPacketSink(&sink);
    net.injectPacket(0, 7, 4, 0); // corner to corner
    kernel.run(100);
    ASSERT_EQ(sink.tails.size(), 1u);
    EXPECT_EQ(sink.tails[0].dst, 7u);
    EXPECT_EQ(net.packetsEjected(), 1u);
    EXPECT_EQ(net.flitsInSystem(), 0u);
}

TEST(Network, DeliversIntraRackPacket)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    SinkProbe sink;
    net.setPacketSink(&sink);
    net.injectPacket(0, 1, 3, 0); // same rack
    kernel.run(60);
    ASSERT_EQ(sink.tails.size(), 1u);
}

TEST(Network, AllPairsDeliver)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    SinkProbe sink;
    net.setPacketSink(&sink);
    int sent = 0;
    for (NodeId s = 0; s < 8; s++) {
        for (NodeId d = 0; d < 8; d++) {
            if (s == d)
                continue;
            net.injectPacket(s, d, 2, kernel.now());
            sent++;
        }
    }
    kernel.run(2000);
    EXPECT_EQ(sink.tails.size(), static_cast<std::size_t>(sent));
    EXPECT_EQ(net.flitsInSystem(), 0u);
    EXPECT_EQ(net.flitsInjected(), net.flitsEjected());
}

TEST(Network, FlitConservationUnderLoad)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    Rng rng(5);
    std::uint64_t injected_flits = 0;
    for (Cycle t = 0; t < 2000; t++) {
        if (rng.bernoulli(0.3)) {
            auto s = static_cast<NodeId>(rng.uniformInt(8));
            NodeId d;
            do {
                d = static_cast<NodeId>(rng.uniformInt(8));
            } while (d == s);
            net.injectPacket(s, d, 4, kernel.now());
            injected_flits += 4;
        }
        kernel.step();
    }
    kernel.run(3000); // drain
    EXPECT_EQ(net.flitsEjected(), injected_flits);
    EXPECT_EQ(net.flitsInSystem(), 0u);
}

TEST(Network, PowerAggregates)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    // All links at max: total power equals the baseline.
    EXPECT_NEAR(net.totalPowerMw(0), net.baselinePowerMw(), 1e-6);
    // Scale one link down: total drops below baseline.
    net.link(0).requestLevel(0, 0);
    kernel.run(200);
    EXPECT_LT(net.totalPowerMw(kernel.now()), net.baselinePowerMw());
}

TEST(Network, PowerIntegralGrowsLinearly)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    double p = net.totalPowerMw(0);
    kernel.run(100);
    EXPECT_NEAR(net.totalPowerIntegralMwCycles(kernel.now()), p * 100,
                1e-6);
}

TEST(Network, DownstreamOfInterRouterLinkIsRouterPort)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        const LinkSpec &spec = net.linkSpec(i);
        auto [provider, port] = net.downstreamOf(i);
        ASSERT_NE(provider, nullptr) << spec.name;
        if (spec.kind == LinkKind::kInterRouter ||
            spec.kind == LinkKind::kInjection) {
            EXPECT_EQ(provider,
                      static_cast<const OccupancyProvider *>(
                          &net.router(spec.dstRouter)))
                << spec.name;
            EXPECT_EQ(port, spec.dstPort.value());
        } else {
            EXPECT_EQ(provider, static_cast<const OccupancyProvider *>(
                                    &net.node(spec.dstNode)));
        }
    }
}

TEST(Network, WormholeKeepsPacketsContiguousPerPair)
{
    // Packets between the same (src, dst) pair arrive in injection
    // order under deterministic routing.
    Kernel kernel;
    Network net(kernel, smallParams());
    SinkProbe sink;
    net.setPacketSink(&sink);
    for (int i = 0; i < 10; i++)
        net.injectPacket(0, 7, 3, 0);
    kernel.run(500);
    ASSERT_EQ(sink.tails.size(), 10u);
    for (std::size_t i = 1; i < sink.tails.size(); i++)
        EXPECT_GT(sink.tails[i].packet, sink.tails[i - 1].packet);
}

TEST(NetworkDeath, BadEndpointsPanic)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    EXPECT_DEATH(net.injectPacket(0, 99, 1, 0), "endpoints");
}
