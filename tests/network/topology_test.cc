/** @file Tests for system link enumeration across fabrics. */

#include <gtest/gtest.h>

#include <set>

#include "network/topology.hh"

using namespace oenet;

TEST(Topology, PaperSystemLinkCounts)
{
    // 8x8 mesh, 8 nodes per rack: 512 injection + 512 ejection +
    // 2*2*(7*8) = 224 inter-router unidirectional links.
    MeshTopology m(8, 8, 8);
    EXPECT_EQ(countLinks(m, LinkKind::kInjection), 512);
    EXPECT_EQ(countLinks(m, LinkKind::kEjection), 512);
    EXPECT_EQ(countLinks(m, LinkKind::kInterRouter), 224);
    EXPECT_EQ(m.enumerateLinks().size(), 1248u);
}

TEST(Topology, InteriorRackOwnsTwentyTransmitters)
{
    // Fig. 3(b)/4(a): 20 fibers per rack = 8 injection + 8 ejection +
    // 4 outgoing inter-router (interior rack).
    MeshTopology m(8, 8, 8);
    auto specs = m.enumerateLinks();
    int rack = m.routerAt(3, 3); // interior
    int tx = 0;
    for (const auto &s : specs) {
        if (s.kind == LinkKind::kInjection &&
            m.routerOf(s.srcNode) == rack)
            tx++;
        if ((s.kind == LinkKind::kEjection ||
             s.kind == LinkKind::kInterRouter) &&
            s.srcRouter == rack)
            tx++;
    }
    EXPECT_EQ(tx, 20);
}

TEST(Topology, CornerRackHasEighteenTransmitters)
{
    MeshTopology m(8, 8, 8);
    auto specs = m.enumerateLinks();
    int tx = 0;
    for (const auto &s : specs) {
        if (s.kind == LinkKind::kInjection &&
            m.routerOf(s.srcNode) == 0)
            tx++;
        if ((s.kind == LinkKind::kEjection ||
             s.kind == LinkKind::kInterRouter) &&
            s.srcRouter == 0)
            tx++;
    }
    EXPECT_EQ(tx, 18); // 8 + 8 + 2 (east, south only)
}

TEST(Topology, InjectionWiring)
{
    MeshTopology m(2, 2, 2);
    auto specs = m.enumerateLinks();
    const LinkSpec &s = specs[3]; // injection link of node 3
    EXPECT_EQ(s.kind, LinkKind::kInjection);
    EXPECT_EQ(s.srcNode, 3u);
    EXPECT_EQ(s.dstRouter, 1);
    EXPECT_EQ(s.dstPort, PortId(1));
}

TEST(Topology, InterRouterPortsArePaired)
{
    // An east link out of (x,y) must land on the west input port of
    // (x+1,y), and so on.
    MeshTopology m(4, 4, 4);
    for (const auto &s : m.enumerateLinks()) {
        if (s.kind != LinkKind::kInterRouter)
            continue;
        auto src_dir = static_cast<Direction>(
            s.srcPort.value() - m.nodesPerCluster());
        auto dst_dir = static_cast<Direction>(
            s.dstPort.value() - m.nodesPerCluster());
        EXPECT_EQ(dst_dir, opposite(src_dir)) << s.name;
        EXPECT_EQ(s.dstRouter,
                  m.neighborRouter(m.routerX(s.srcRouter),
                                   m.routerY(s.srcRouter), src_dir))
            << s.name;
    }
}

TEST(Topology, NamesAreUnique)
{
    MeshTopology m(4, 4, 4);
    std::set<std::string> names;
    for (const auto &s : m.enumerateLinks())
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
}

TEST(Topology, EveryRouterPortConnectedAtMostOnce)
{
    MeshTopology m(8, 8, 8);
    std::set<std::pair<int, int>> in_ports, out_ports;
    for (const auto &s : m.enumerateLinks()) {
        if (s.dstRouter != kInvalid)
            EXPECT_TRUE(
                in_ports.insert({s.dstRouter, s.dstPort.value()})
                    .second)
                << s.name;
        if (s.srcRouter != kInvalid)
            EXPECT_TRUE(
                out_ports.insert({s.srcRouter, s.srcPort.value()})
                    .second)
                << s.name;
    }
}

// ---------------------------------------------------------------------
// Torus wrap-link enumeration
// ---------------------------------------------------------------------

TEST(TorusTopology, EveryRouterHasAllFourNeighbors)
{
    TorusTopology t(4, 4, 2);
    // 4x4 torus: every router emits 4 inter-router links (wrap links
    // close the edges), so 4*16 = 64 vs the mesh's 2*2*(3*4) = 48.
    EXPECT_EQ(countLinks(t, LinkKind::kInterRouter), 64);
    MeshTopology m(4, 4, 2);
    EXPECT_EQ(countLinks(m, LinkKind::kInterRouter), 48);
}

TEST(TorusTopology, WrapLinksCloseTheRings)
{
    TorusTopology t(4, 4, 2);
    // East out of the last column wraps to column 0 of the same row.
    EXPECT_EQ(t.neighborRouter(3, 1, Direction::kEast), t.routerAt(0, 1));
    EXPECT_EQ(t.neighborRouter(0, 1, Direction::kWest), t.routerAt(3, 1));
    EXPECT_EQ(t.neighborRouter(2, 0, Direction::kNorth),
              t.routerAt(2, 3));
    EXPECT_EQ(t.neighborRouter(2, 3, Direction::kSouth),
              t.routerAt(2, 0));

    // The wrap links appear in the enumeration with paired ports.
    bool found = false;
    for (const auto &s : t.enumerateLinks()) {
        if (s.kind != LinkKind::kInterRouter)
            continue;
        if (s.srcRouter == t.routerAt(3, 1) &&
            s.srcPort == t.dirPort(Direction::kEast)) {
            EXPECT_EQ(s.dstRouter, t.routerAt(0, 1));
            EXPECT_EQ(s.dstPort, t.dirPort(Direction::kWest));
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(TorusTopology, MinimalRoutingUsesWrap)
{
    TorusTopology t(4, 4, 2);
    RouteOption out[kMaxRouteCandidates];
    // Column 0 -> column 3 is one hop west around the wrap, not three
    // hops east.
    NodeId dst = t.nodeAt(t.routerAt(3, 0), 0);
    ASSERT_EQ(t.routeCandidates(RoutingAlgo::kXY, t.routerAt(0, 0),
                                dst, out),
              1);
    EXPECT_EQ(out[0].port, t.dirPort(Direction::kWest));
    EXPECT_EQ(t.hopCount(t.nodeAt(t.routerAt(0, 0), 0), dst), 2);
}

TEST(TorusTopology, DatelineVcClasses)
{
    TorusTopology t(4, 4, 2);
    EXPECT_EQ(t.numVcClasses(), 2);
    RouteOption out[kMaxRouteCandidates];
    // (0,0) -> column 3 travels backward across the wrap: the wrap
    // still lies ahead, so the next channel is class 0.
    NodeId wrap_dst = t.nodeAt(t.routerAt(3, 0), 0);
    t.routeCandidates(RoutingAlgo::kXY, t.routerAt(0, 0), wrap_dst,
                      out);
    EXPECT_EQ(out[0].vcClass, 0);
    // (1,0) -> column 2 travels forward without wrapping: class 1.
    NodeId near_dst = t.nodeAt(t.routerAt(2, 0), 0);
    t.routeCandidates(RoutingAlgo::kXY, t.routerAt(1, 0), near_dst,
                      out);
    EXPECT_EQ(out[0].vcClass, 1);
    // Ejection at the destination router is unrestricted.
    t.routeCandidates(RoutingAlgo::kXY, t.routerAt(2, 0), near_dst,
                      out);
    EXPECT_EQ(out[0].vcClass, kAnyVcClass);
}

// ---------------------------------------------------------------------
// Concentrated-mesh node mapping
// ---------------------------------------------------------------------

TEST(CMeshTopology, ConcentrationMapping)
{
    // 2x2 routers, concentration 4: nodes tile a 4x4 grid in 2x2
    // blocks. Node ids are row-major over tiles, so node 5 = tile
    // (1,1) -> router (0,0) local 3, node 6 = tile (2,1) -> router
    // (1,0) local 2.
    CMeshTopology c(2, 2, 4);
    EXPECT_EQ(c.blockSide(), 2);
    EXPECT_EQ(c.tileGridWidth(), 4);
    EXPECT_EQ(c.numNodes(), 16);

    EXPECT_EQ(c.routerOf(0), c.routerAt(0, 0));
    EXPECT_EQ(c.attachPort(0), PortId(0));
    EXPECT_EQ(c.routerOf(5), c.routerAt(0, 0));
    EXPECT_EQ(c.attachPort(5), PortId(3));
    EXPECT_EQ(c.routerOf(6), c.routerAt(1, 0));
    EXPECT_EQ(c.attachPort(6), PortId(2));
    EXPECT_EQ(c.routerOf(15), c.routerAt(1, 1));
    EXPECT_EQ(c.attachPort(15), PortId(3));
}

TEST(CMeshTopology, NodeAtInvertsTheMapping)
{
    CMeshTopology c(3, 2, 9);
    for (int n = 0; n < c.numNodes(); n++) {
        auto node = static_cast<NodeId>(n);
        int r = c.routerOf(node);
        PortId local = c.attachPort(node);
        EXPECT_EQ(c.nodeAt(r, local.value()), node);
    }
}

TEST(CMeshTopology, SpatialNeighborsShareARouter)
{
    // The point of concentration: adjacent tiles mostly land on the
    // same router, unlike the linear mesh mapping.
    CMeshTopology c(2, 2, 4);
    EXPECT_EQ(c.routerOf(0), c.routerOf(1));  // (0,0) and (1,0)
    EXPECT_EQ(c.routerOf(0), c.routerOf(4));  // (0,0) and (0,1)
    EXPECT_NE(c.routerOf(1), c.routerOf(2));  // block boundary
    // Every node routes to itself with zero network hops.
    for (int n = 0; n < c.numNodes(); n++) {
        auto node = static_cast<NodeId>(n);
        EXPECT_EQ(c.hopCount(node, node), 1);
    }
}

TEST(CMeshTopology, LinkBudgetShrinksWithConcentration)
{
    // 16 nodes either way; the cmesh trades 16 routers for 4 with
    // 4x the endpoint links per router and far fewer router links.
    CMeshTopology c(2, 2, 4);
    MeshTopology m(4, 4, 1);
    EXPECT_EQ(c.numNodes(), m.numNodes());
    EXPECT_EQ(countLinks(c, LinkKind::kInjection), 16);
    EXPECT_EQ(countLinks(c, LinkKind::kInterRouter), 8);
    EXPECT_EQ(countLinks(m, LinkKind::kInterRouter), 48);
}

// ---------------------------------------------------------------------
// Fat-tree structure
// ---------------------------------------------------------------------

TEST(FatTreeTopology, K4Geometry)
{
    FatTreeTopology f(4);
    EXPECT_EQ(f.numNodes(), 16);   // k^3/4
    EXPECT_EQ(f.numRouters(), 20); // 8 edge + 8 agg + 4 core
    EXPECT_EQ(f.portsPerRouter(), 4);
    EXPECT_EQ(f.numEdge(), 8);
    EXPECT_EQ(f.numAgg(), 8);
    EXPECT_EQ(f.numCore(), 4);
    EXPECT_TRUE(f.isEdge(0));
    EXPECT_TRUE(f.isAgg(8));
    EXPECT_TRUE(f.isCore(16));
    EXPECT_EQ(f.podOf(0), 0);
    EXPECT_EQ(f.podOf(7), 3);
    EXPECT_EQ(f.podOf(8), 0);
}

TEST(FatTreeTopology, LinkBudget)
{
    // k=4: 16 edge<->agg cables plus 16 agg<->core cables, each cable
    // two unidirectional links (the mesh counts links the same way).
    FatTreeTopology f(4);
    EXPECT_EQ(countLinks(f, LinkKind::kInjection), 16);
    EXPECT_EQ(countLinks(f, LinkKind::kEjection), 16);
    EXPECT_EQ(countLinks(f, LinkKind::kInterRouter), 64);
}

TEST(FatTreeTopology, LinksAreBidirectionalPairs)
{
    FatTreeTopology f(4);
    std::set<std::tuple<int, int, int, int>> fwd;
    for (const auto &s : f.enumerateLinks()) {
        if (s.kind == LinkKind::kInterRouter)
            fwd.insert({s.srcRouter, s.srcPort.value(), s.dstRouter,
                        s.dstPort.value()});
    }
    for (const auto &[sr, sp, dr, dp] : fwd)
        EXPECT_TRUE(fwd.count({dr, dp, sr, sp}))
            << "no reverse of r" << sr << ".p" << sp << " -> r" << dr
            << ".p" << dp;
}

TEST(FatTreeTopology, UpDownRoutesDeliverEveryPair)
{
    FatTreeTopology f(4);
    // Walk every (src, dst) pair hop by hop along the wired links and
    // check delivery in the minimal hop count with no down->up turn
    // (the deadlock-freedom invariant of up/down routing).
    auto specs = f.enumerateLinks();
    auto next_hop = [&](int router, PortId port) {
        for (const auto &s : specs) {
            if (s.kind == LinkKind::kInterRouter &&
                s.srcRouter == router && s.srcPort == port)
                return s.dstRouter;
        }
        ADD_FAILURE() << "unwired port r" << router << ".p"
                      << port.value();
        return kInvalid;
    };
    int half = f.arity() / 2;
    for (int s = 0; s < f.numNodes(); s++) {
        for (int d = 0; d < f.numNodes(); d++) {
            auto src = static_cast<NodeId>(s);
            auto dst = static_cast<NodeId>(d);
            int router = f.routerOf(src);
            int hops = 1;
            bool went_down = false;
            for (;;) {
                RouteOption out[kMaxRouteCandidates];
                ASSERT_EQ(f.routeCandidates(RoutingAlgo::kXY, router,
                                            dst, out),
                          1);
                if (f.isEdge(router) && out[0].port.value() < half) {
                    EXPECT_EQ(out[0].port, f.attachPort(dst));
                    break;
                }
                bool down = f.isCore(router) ||
                            (f.isAgg(router) &&
                             out[0].port.value() < half);
                EXPECT_FALSE(went_down && !down)
                    << "down->up turn at router " << router;
                went_down = went_down || down;
                router = next_hop(router, out[0].port);
                ASSERT_NE(router, kInvalid);
                hops++;
                ASSERT_LE(hops, 5) << "route did not converge";
            }
            EXPECT_EQ(hops, f.hopCount(src, dst));
        }
    }
}

// ---------------------------------------------------------------------
// Shard partition maps
// ---------------------------------------------------------------------

namespace {

// Every fabric's partition must cover all routers with valid shard
// ids, keep shard populations balanced (contiguous slices differ by
// at most one router), and assign slices in non-decreasing order so
// boundary links are exactly the slice edges.
void
checkPartition(const Topology &topo, int n_shards)
{
    std::vector<int> map = topo.partition(n_shards);
    ASSERT_EQ(map.size(), static_cast<std::size_t>(topo.numRouters()));
    std::vector<int> population(n_shards, 0);
    int prev = 0;
    for (int shard : map) {
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, n_shards);
        EXPECT_GE(shard, prev) << "slices must be contiguous";
        prev = shard;
        population[shard]++;
    }
    int lo = topo.numRouters(), hi = 0;
    for (int p : population) {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    if (n_shards <= topo.numRouters())
        EXPECT_LE(hi - lo, 1) << "unbalanced partition";
    // Pure function of (topology, n_shards).
    EXPECT_EQ(topo.partition(n_shards), map);
}

} // namespace

TEST(Partition, CoversBalancesAndRepeats)
{
    MeshTopology mesh(5, 3, 2);
    TorusTopology torus(4, 4, 2);
    CMeshTopology cmesh(4, 4, 4);
    FatTreeTopology ftree(4);
    const std::vector<const Topology *> fabrics = {&mesh, &torus,
                                                   &cmesh, &ftree};
    for (const Topology *t : fabrics) {
        for (int n : {1, 2, 3, 4, 7, 16})
            checkPartition(*t, n);
    }
}

TEST(Partition, SingleShardOwnsEverything)
{
    MeshTopology m(8, 8, 8);
    std::vector<int> map = m.partition(1);
    for (int shard : map)
        EXPECT_EQ(shard, 0);
}

TEST(Partition, MoreShardsThanRoutersLeavesEmptyShards)
{
    MeshTopology m(2, 2, 1);
    std::vector<int> map = m.partition(7);
    ASSERT_EQ(map.size(), 4u);
    // Four routers land in four distinct shards; three shards empty.
    std::set<int> used(map.begin(), map.end());
    EXPECT_EQ(used.size(), 4u);
}

TEST(Partition, MeshRowStripes)
{
    // 4x4 mesh in 4 shards: one row (canonical indices y*X+x) each.
    MeshTopology m(4, 4, 1);
    std::vector<int> map = m.partition(4);
    for (int r = 0; r < 16; r++)
        EXPECT_EQ(map[r], r / 4) << "router " << r;
}
