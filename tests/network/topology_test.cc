/** @file Tests for system link enumeration. */

#include <gtest/gtest.h>

#include <set>

#include "network/topology.hh"

using namespace oenet;

TEST(Topology, OppositeDirections)
{
    EXPECT_EQ(oppositeDir(kDirEast), kDirWest);
    EXPECT_EQ(oppositeDir(kDirWest), kDirEast);
    EXPECT_EQ(oppositeDir(kDirNorth), kDirSouth);
    EXPECT_EQ(oppositeDir(kDirSouth), kDirNorth);
}

TEST(Topology, PaperSystemLinkCounts)
{
    // 8x8 mesh, 8 nodes per rack: 512 injection + 512 ejection +
    // 2*2*(7*8) = 224 inter-router unidirectional links.
    ClusteredMesh m(8, 8, 8);
    EXPECT_EQ(countLinks(m, LinkKind::kInjection), 512);
    EXPECT_EQ(countLinks(m, LinkKind::kEjection), 512);
    EXPECT_EQ(countLinks(m, LinkKind::kInterRouter), 224);
    EXPECT_EQ(enumerateLinks(m).size(), 1248u);
}

TEST(Topology, InteriorRackOwnsTwentyTransmitters)
{
    // Fig. 3(b)/4(a): 20 fibers per rack = 8 injection + 8 ejection +
    // 4 outgoing inter-router (interior rack).
    ClusteredMesh m(8, 8, 8);
    auto specs = enumerateLinks(m);
    int rack = m.rackAt(3, 3); // interior
    int tx = 0;
    for (const auto &s : specs) {
        if (s.kind == LinkKind::kInjection &&
            m.rackOf(s.srcNode) == rack)
            tx++;
        if ((s.kind == LinkKind::kEjection ||
             s.kind == LinkKind::kInterRouter) &&
            s.srcRouter == rack)
            tx++;
    }
    EXPECT_EQ(tx, 20);
}

TEST(Topology, CornerRackHasEighteenTransmitters)
{
    ClusteredMesh m(8, 8, 8);
    auto specs = enumerateLinks(m);
    int tx = 0;
    for (const auto &s : specs) {
        if (s.kind == LinkKind::kInjection && m.rackOf(s.srcNode) == 0)
            tx++;
        if ((s.kind == LinkKind::kEjection ||
             s.kind == LinkKind::kInterRouter) &&
            s.srcRouter == 0)
            tx++;
    }
    EXPECT_EQ(tx, 18); // 8 + 8 + 2 (east, south only)
}

TEST(Topology, InjectionWiring)
{
    ClusteredMesh m(2, 2, 2);
    auto specs = enumerateLinks(m);
    const LinkSpec &s = specs[3]; // injection link of node 3
    EXPECT_EQ(s.kind, LinkKind::kInjection);
    EXPECT_EQ(s.srcNode, 3u);
    EXPECT_EQ(s.dstRouter, 1);
    EXPECT_EQ(s.dstPort, 1);
}

TEST(Topology, InterRouterPortsArePaired)
{
    // An east link out of (x,y) must land on the west input port of
    // (x+1,y), and so on.
    ClusteredMesh m(4, 4, 4);
    for (const auto &s : enumerateLinks(m)) {
        if (s.kind != LinkKind::kInterRouter)
            continue;
        int src_dir = s.srcPort - m.nodesPerCluster();
        int dst_dir = s.dstPort - m.nodesPerCluster();
        EXPECT_EQ(dst_dir, oppositeDir(src_dir)) << s.name;
        EXPECT_EQ(s.dstRouter,
                  m.neighborRack(m.rackX(s.srcRouter),
                                 m.rackY(s.srcRouter), src_dir))
            << s.name;
    }
}

TEST(Topology, NamesAreUnique)
{
    ClusteredMesh m(4, 4, 4);
    std::set<std::string> names;
    for (const auto &s : enumerateLinks(m))
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
}

TEST(Topology, EveryRouterPortConnectedAtMostOnce)
{
    ClusteredMesh m(8, 8, 8);
    std::set<std::pair<int, int>> in_ports, out_ports;
    for (const auto &s : enumerateLinks(m)) {
        if (s.dstRouter != kInvalid)
            EXPECT_TRUE(
                in_ports.insert({s.dstRouter, s.dstPort}).second)
                << s.name;
        if (s.srcRouter != kInvalid)
            EXPECT_TRUE(
                out_ports.insert({s.srcRouter, s.srcPort}).second)
                << s.name;
    }
}
