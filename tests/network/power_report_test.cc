/** @file Tests for the network power/utilization reporting. */

#include <gtest/gtest.h>

#include "network/power_report.hh"

using namespace oenet;

namespace {

Network::Params
smallParams()
{
    Network::Params p;
    p.topo.meshX = 2;
    p.topo.meshY = 2;
    p.topo.clusterSize = 2;
    return p;
}

} // namespace

TEST(PowerReport, CountsMatchTopology)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    PowerReport r = makePowerReport(net, 0);
    EXPECT_EQ(r.forKind(LinkKind::kInjection).count, 8);
    EXPECT_EQ(r.forKind(LinkKind::kEjection).count, 8);
    EXPECT_EQ(r.forKind(LinkKind::kInterRouter).count, 8);
}

TEST(PowerReport, AllAtMaxEqualsBaseline)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    PowerReport r = makePowerReport(net, 0);
    EXPECT_NEAR(r.totalPowerMw, r.baselinePowerMw, 1e-6);
    EXPECT_NEAR(r.normalizedPower, 1.0, 1e-9);
    for (const auto &kr : r.byKind) {
        EXPECT_NEAR(kr.normalizedPower, 1.0, 1e-9);
        EXPECT_DOUBLE_EQ(kr.meanLevel, 5.0);
        // All links sit in the top-level bin.
        EXPECT_EQ(kr.levelHistogram.back(), kr.count);
    }
}

TEST(PowerReport, ReflectsScaledLinks)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    // Scale all injection links to the bottom.
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        if (net.linkSpec(i).kind == LinkKind::kInjection)
            net.link(i).requestLevel(0, 0);
    }
    kernel.run(200); // let transitions finish
    PowerReport r = makePowerReport(net, kernel.now());
    const auto &inj = r.forKind(LinkKind::kInjection);
    EXPECT_LT(inj.normalizedPower, 0.3);
    EXPECT_DOUBLE_EQ(inj.meanLevel, 0.0);
    EXPECT_EQ(inj.levelHistogram.front(), inj.count);
    EXPECT_NEAR(r.forKind(LinkKind::kEjection).normalizedPower, 1.0,
                1e-9);
    EXPECT_LT(r.normalizedPower, 1.0);
}

TEST(PowerReport, TotalsAreSumOfKinds)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    net.link(0).requestLevel(0, 2);
    kernel.run(300);
    PowerReport r = makePowerReport(net, kernel.now());
    double sum = 0.0;
    for (const auto &kr : r.byKind)
        sum += kr.powerMw;
    EXPECT_NEAR(sum, r.totalPowerMw, 1e-6);
}

TEST(PowerReport, ToStringMentionsEveryKind)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    std::string s = makePowerReport(net, 0).toString();
    EXPECT_NE(s.find("injection"), std::string::npos);
    EXPECT_NE(s.find("ejection"), std::string::npos);
    EXPECT_NE(s.find("inter-router"), std::string::npos);
}

TEST(PowerReport, HistogramsSizedByMaxLevelAndSumToCount)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    PowerReport r = makePowerReport(net, 0);
    std::size_t bins =
        static_cast<std::size_t>(net.levels().maxLevel()) + 1;
    for (const auto &kr : r.byKind) {
        ASSERT_EQ(kr.levelHistogram.size(), bins);
        int sum = 0;
        for (int b : kr.levelHistogram)
            sum += b;
        EXPECT_EQ(sum, kr.count);
    }
}

TEST(PowerReport, MeanLevelAveragesMixedLevels)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    // Half the injection links to level 1, half stay at 5.
    int moved = 0;
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        if (net.linkSpec(i).kind == LinkKind::kInjection && moved < 4) {
            net.link(i).requestLevel(0, 1);
            moved++;
        }
    }
    kernel.run(300); // let transitions finish
    PowerReport r = makePowerReport(net, kernel.now());
    const auto &inj = r.forKind(LinkKind::kInjection);
    EXPECT_DOUBLE_EQ(inj.meanLevel, (4 * 1 + 4 * 5) / 8.0);
    EXPECT_EQ(inj.levelHistogram[1], 4);
    EXPECT_EQ(inj.levelHistogram[5], 4);
}

TEST(PowerReport, KindWithNoLinksKeepsNormalizedPowerZero)
{
    // A 1x1 mesh has no inter-router links: the count-0 guard must
    // keep that kind's normalizedPower/meanLevel at 0 instead of 0/0.
    Network::Params p;
    p.topo.meshX = 1;
    p.topo.meshY = 1;
    p.topo.clusterSize = 1;
    Kernel kernel;
    Network net(kernel, p);
    PowerReport r = makePowerReport(net, 0);
    const auto &ir = r.forKind(LinkKind::kInterRouter);
    EXPECT_EQ(ir.count, 0);
    EXPECT_DOUBLE_EQ(ir.baselineMw, 0.0);
    EXPECT_DOUBLE_EQ(ir.normalizedPower, 0.0);
    EXPECT_DOUBLE_EQ(ir.meanLevel, 0.0);
    // The network still has injection/ejection links, so the whole-
    // system ratio is well defined.
    EXPECT_GT(r.baselinePowerMw, 0.0);
    EXPECT_NEAR(r.normalizedPower, 1.0, 1e-9);
    // toString skips the empty kind entirely.
    EXPECT_EQ(r.toString().find("inter-router"), std::string::npos);
}

TEST(PowerReport, LinkRowsReflectTransitionsAndFlitCounters)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    net.link(0).requestLevel(0, 4);
    kernel.run(300);
    auto rows = collectLinkRows(net, kernel.now());
    EXPECT_EQ(rows[0].transitions, 1u);
    EXPECT_EQ(rows[0].level, 4);
    // resetStats clears the cumulative counters the rows report.
    net.resetStats(kernel.now());
    rows = collectLinkRows(net, kernel.now());
    EXPECT_EQ(rows[0].transitions, 0u);
    EXPECT_EQ(rows[0].totalFlits, 0u);
}

namespace {

// Field-by-field bitwise comparison of the ledger-served report
// against the direct-walk oracle. EXPECT_EQ on doubles on purpose:
// the ledger mirrors every TimeWeighted fold, so with the thermal
// model off the two paths must agree to the last bit, not to an
// epsilon.
void
expectReportsBitwiseEqual(const PowerReport &a, const PowerReport &b)
{
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.totalPowerMw, b.totalPowerMw);
    EXPECT_EQ(a.baselinePowerMw, b.baselinePowerMw);
    EXPECT_EQ(a.normalizedPower, b.normalizedPower);
    for (std::size_t k = 0; k < a.byKind.size(); k++) {
        const KindReport &ka = a.byKind[k];
        const KindReport &kb = b.byKind[k];
        EXPECT_EQ(ka.count, kb.count);
        EXPECT_EQ(ka.powerMw, kb.powerMw) << "kind " << k;
        EXPECT_EQ(ka.baselineMw, kb.baselineMw);
        EXPECT_EQ(ka.normalizedPower, kb.normalizedPower);
        EXPECT_EQ(ka.meanLevel, kb.meanLevel);
        EXPECT_EQ(ka.totalFlits, kb.totalFlits);
        EXPECT_EQ(ka.levelHistogram, kb.levelHistogram);
    }
}

} // namespace

TEST(PowerReport, LedgerMatchesDirectWalkBitwise)
{
    // Mixed levels, an in-flight transition, and a gated link: the
    // ledger fast path and the legacy per-link walk must agree
    // bitwise at every probe point (the leakage-off byte-identity
    // guarantee, docs/DETERMINISM.md §6).
    Kernel kernel;
    Network net(kernel, smallParams());
    net.link(0).requestLevel(0, 2);
    net.link(3).requestLevel(0, 4);
    kernel.run(40); // both still mid-transition
    expectReportsBitwiseEqual(makePowerReport(net, kernel.now()),
                              makePowerReportDirect(net, kernel.now()));
    EXPECT_EQ(net.totalPowerIntegralMwCycles(kernel.now()),
              net.totalPowerIntegralMwCyclesDirect(kernel.now()));

    kernel.run(2000); // transitions complete
    net.link(5).setOff(kernel.now(), true);
    kernel.run(500);
    expectReportsBitwiseEqual(makePowerReport(net, kernel.now()),
                              makePowerReportDirect(net, kernel.now()));
    EXPECT_EQ(net.totalPowerIntegralMwCycles(kernel.now()),
              net.totalPowerIntegralMwCyclesDirect(kernel.now()));
    EXPECT_EQ(net.totalPowerMw(kernel.now()),
              net.totalPowerMwDirect(kernel.now()));
}

TEST(PowerReport, ThermalReportPopulatesLeakageFields)
{
    Network::Params p = smallParams();
    p.thermal.enabled = true;
    Kernel kernel;
    Network net(kernel, p);
    kernel.run(5 * p.thermal.epochCycles);

    PowerReport r = makePowerReport(net, kernel.now());
    EXPECT_TRUE(r.thermal);
    EXPECT_GT(r.leakagePowerMw, 0.0);
    // Effective power = dynamic + leakage, so the total exceeds the
    // all-at-max *dynamic* baseline.
    EXPECT_GT(r.totalPowerMw, r.baselinePowerMw);
    // Idle-but-powered links heat above ambient within a few epochs.
    EXPECT_GT(r.maxTempC, p.thermal.ambientC);
    EXPECT_LT(r.maxTempC, 100.0);
    EXPECT_EQ(r.vcEnergyMwCycles.size(),
              static_cast<std::size_t>(p.router.numVcs));
    for (const auto &kr : r.byKind)
        EXPECT_GT(kr.leakageMw, 0.0);

    auto rows = collectLinkRows(net, kernel.now());
    for (const auto &row : rows) {
        EXPECT_GT(row.leakageMw, 0.0);
        EXPECT_GT(row.tempC, p.thermal.ambientC);
        EXPECT_EQ(row.vcFlits.size(),
                  static_cast<std::size_t>(p.router.numVcs));
    }
}

TEST(PowerReport, LinkRowsCoverAllLinks)
{
    Kernel kernel;
    Network net(kernel, smallParams());
    auto rows = collectLinkRows(net, 0);
    ASSERT_EQ(rows.size(), net.numLinks());
    for (std::size_t i = 0; i < rows.size(); i++) {
        EXPECT_EQ(rows[i].name, net.link(i).name());
        EXPECT_EQ(rows[i].level, 5);
        EXPECT_DOUBLE_EQ(rows[i].brGbps, 10.0);
        EXPECT_GT(rows[i].powerMw, 0.0);
    }
}
