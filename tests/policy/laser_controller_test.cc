/** @file Tests for the external-laser-source controller semantics. */

#include <gtest/gtest.h>

#include "policy/laser_controller.hh"

using namespace oenet;

namespace {

LaserPowerState::Params
fastParams()
{
    LaserPowerState::Params p;
    p.responseCycles = 100;
    p.decisionEpochCycles = 500;
    return p;
}

} // namespace

TEST(LaserPowerState, DefaultsMatchPaper)
{
    LaserPowerState s;
    // 100 us response, 200 us decision epoch at 625 MHz.
    EXPECT_EQ(s.params().responseCycles, 62500u);
    EXPECT_EQ(s.params().decisionEpochCycles, 125000u);
    EXPECT_EQ(s.level(), OpticalLevel::kHigh);
    EXPECT_DOUBLE_EQ(s.scale(), 1.0);
}

TEST(LaserPowerState, IncreaseFromTopIsNoOp)
{
    LaserPowerState s(fastParams());
    s.requestIncrease(0);
    EXPECT_FALSE(s.changePending());
}

TEST(LaserPowerState, DecreaseAfterQuietEpoch)
{
    LaserPowerState s(fastParams());
    s.observeBitRate(5.5); // fits the mid band (<= 6 Gb/s)
    s.epochDecision(500);
    EXPECT_TRUE(s.changePending());
    EXPECT_FALSE(s.advance(599)); // response not elapsed
    EXPECT_TRUE(s.advance(600));
    EXPECT_EQ(s.level(), OpticalLevel::kMid);
    EXPECT_DOUBLE_EQ(s.scale(), 0.5);
    EXPECT_EQ(s.decreases(), 1u);
}

TEST(LaserPowerState, NoDecreaseWhenEpochSawHighRate)
{
    LaserPowerState s(fastParams());
    s.observeBitRate(5.0);
    s.observeBitRate(9.0); // one fast window blocks P_dec
    s.epochDecision(500);
    EXPECT_FALSE(s.changePending());
}

TEST(LaserPowerState, EpochTrackerResets)
{
    LaserPowerState s(fastParams());
    s.observeBitRate(9.0);
    s.epochDecision(500); // no decrease; resets the max tracker
    s.observeBitRate(5.0);
    s.epochDecision(1000);
    EXPECT_TRUE(s.changePending());
}

TEST(LaserPowerState, IncreaseIsImmediateDispatch)
{
    LaserPowerState s(fastParams(), OpticalLevel::kLow);
    s.requestIncrease(50);
    EXPECT_TRUE(s.changePending());
    EXPECT_EQ(s.level(), OpticalLevel::kLow); // light not there yet
    EXPECT_TRUE(s.advance(150));
    EXPECT_EQ(s.level(), OpticalLevel::kMid);
    EXPECT_EQ(s.increases(), 1u);
}

TEST(LaserPowerState, NoDoubleRequestWhilePending)
{
    LaserPowerState s(fastParams(), OpticalLevel::kLow);
    s.requestIncrease(0);
    s.requestIncrease(10); // ignored
    EXPECT_EQ(s.increases(), 1u);
    s.advance(100);
    EXPECT_EQ(s.level(), OpticalLevel::kMid);
}

TEST(LaserPowerState, StepsAreOneLevelAtATime)
{
    LaserPowerState s(fastParams(), OpticalLevel::kLow);
    s.requestIncrease(0);
    s.advance(100);
    EXPECT_EQ(s.level(), OpticalLevel::kMid);
    s.requestIncrease(200);
    s.advance(300);
    EXPECT_EQ(s.level(), OpticalLevel::kHigh);
}

TEST(LaserPowerState, NoDecreaseBelowLow)
{
    LaserPowerState s(fastParams(), OpticalLevel::kLow);
    s.observeBitRate(3.3);
    s.epochDecision(500);
    EXPECT_FALSE(s.changePending());
}

TEST(LaserPowerState, DecreaseBlockedWhilePending)
{
    LaserPowerState s(fastParams(), OpticalLevel::kLow);
    s.requestIncrease(0);
    s.observeBitRate(3.3);
    EXPECT_FALSE(s.epochDecision(10)); // increase pending: no P_dec
    s.advance(100);
    EXPECT_EQ(s.level(), OpticalLevel::kMid);
}

// ---------------------------------------------------------------------
// Regression: a P_inc arriving while a P_dec is still in the VOA
// pipeline used to be silently dropped, leaving a loaded link stuck
// waiting for light that was about to be *reduced*. The increase must
// preempt the pending decrease (and, below kHigh, dispatch).
// ---------------------------------------------------------------------

TEST(LaserPowerState, IncreasePreemptsPendingDecreaseAtMax)
{
    LaserPowerState s(fastParams()); // kHigh
    s.observeBitRate(5.5);
    EXPECT_TRUE(s.epochDecision(500)); // P_dec toward kMid dispatched
    EXPECT_TRUE(s.changePending());
    EXPECT_EQ(s.guaranteedLevel(), OpticalLevel::kMid);

    // Load returns before the VOA settles: cancel the decrease.
    EXPECT_EQ(s.requestIncrease(550), LaserRequestOutcome::kPreempted);
    EXPECT_FALSE(s.changePending());
    EXPECT_EQ(s.guaranteedLevel(), OpticalLevel::kHigh);
    EXPECT_EQ(s.decreasesPreempted(), 1u);

    // The cancelled decrease must never commit (decreases() counts
    // dispatches, so it stays at 1; the preemption counter tells the
    // rest of the story).
    EXPECT_FALSE(s.advance(700));
    EXPECT_EQ(s.level(), OpticalLevel::kHigh);
    EXPECT_EQ(s.decreases(), 1u);
}

TEST(LaserPowerState, IncreasePreemptsDecreaseAndDispatchesBelowMax)
{
    LaserPowerState s(fastParams(), OpticalLevel::kMid);
    s.observeBitRate(2.0);
    EXPECT_TRUE(s.epochDecision(500)); // P_dec toward kLow
    EXPECT_EQ(s.requestIncrease(550),
              LaserRequestOutcome::kPreemptedAndDispatched);
    EXPECT_EQ(s.decreasesPreempted(), 1u);
    EXPECT_EQ(s.increases(), 1u);
    // The replacement P_inc commits one response time after dispatch.
    EXPECT_FALSE(s.advance(649));
    EXPECT_TRUE(s.advance(650));
    EXPECT_EQ(s.level(), OpticalLevel::kHigh);
    EXPECT_EQ(s.decreases(), 1u); // dispatched once, never committed
}

TEST(LaserPowerState, DuplicateIncreaseIsCountedDropped)
{
    LaserPowerState s(fastParams(), OpticalLevel::kLow);
    EXPECT_EQ(s.requestIncrease(0), LaserRequestOutcome::kDispatched);
    EXPECT_EQ(s.requestIncrease(10),
              LaserRequestOutcome::kAlreadyRising);
    EXPECT_EQ(s.increases(), 1u);
    EXPECT_EQ(s.increasesDropped(), 1u);
    EXPECT_EQ(s.decreasesPreempted(), 0u);
}

TEST(LaserPowerState, IncreaseAtMaxWithoutPendingReportsAtMax)
{
    LaserPowerState s(fastParams()); // kHigh, nothing pending
    EXPECT_EQ(s.requestIncrease(0), LaserRequestOutcome::kAtMax);
    EXPECT_FALSE(s.changePending());
    EXPECT_EQ(s.increases(), 0u);
    EXPECT_EQ(s.decreasesPreempted(), 0u);
}
