/** @file Tests for the history-based DVS policy (Table 1, Eq. 11). */

#include <gtest/gtest.h>

#include "policy/history_dvs.hh"

using namespace oenet;

TEST(HistoryDvs, Table1Defaults)
{
    HistoryDvsPolicy p;
    EXPECT_DOUBLE_EQ(p.lowThreshold(0.0), 0.4);
    EXPECT_DOUBLE_EQ(p.highThreshold(0.0), 0.6);
    EXPECT_DOUBLE_EQ(p.lowThreshold(0.5), 0.6); // B_u,con = 0.5
    EXPECT_DOUBLE_EQ(p.highThreshold(0.5), 0.7);
    EXPECT_DOUBLE_EQ(p.lowThreshold(0.8), 0.6);
    EXPECT_DOUBLE_EQ(p.highThreshold(0.8), 0.7);
}

TEST(HistoryDvs, DecisionAgainstThresholds)
{
    HistoryDvsPolicy p;
    p.observe(0.9);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kUp);
    p.reset();
    p.observe(0.1);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kDown);
    p.reset();
    p.observe(0.5);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kHold);
}

TEST(HistoryDvs, CongestionMakesPolicyMoreAggressive)
{
    // Lu = 0.65: uncongested -> Up (0.65 > 0.6); congested -> Hold
    // (0.6 <= 0.65 <= 0.7), i.e. congestion masks latency so the
    // policy holds the lower rate.
    HistoryDvsPolicy p;
    p.observe(0.65);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kUp);
    EXPECT_EQ(p.decide(0.6), LevelDecision::kHold);

    p.reset();
    p.observe(0.55);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kHold);
    EXPECT_EQ(p.decide(0.6), LevelDecision::kDown);
}

TEST(HistoryDvs, SlidingAverageSmoothsSpikes)
{
    // Eq. 11: a single-window spike must not trigger an upgrade when
    // the average stays below T_H.
    HistoryDvsParams params;
    params.slidingWindows = 4;
    HistoryDvsPolicy p(params);
    p.observe(0.1);
    p.observe(0.1);
    p.observe(0.1);
    p.observe(0.9); // spike
    EXPECT_NEAR(p.averageUtilization(), 0.3, 1e-12);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kDown);
}

TEST(HistoryDvs, AverageUsesOnlyLastN)
{
    HistoryDvsParams params;
    params.slidingWindows = 2;
    HistoryDvsPolicy p(params);
    p.observe(1.0);
    p.observe(0.0);
    p.observe(0.0);
    EXPECT_DOUBLE_EQ(p.averageUtilization(), 0.0);
}

TEST(HistoryDvs, PartialHistoryAverages)
{
    HistoryDvsParams params;
    params.slidingWindows = 4;
    HistoryDvsPolicy p(params);
    p.observe(0.8);
    EXPECT_DOUBLE_EQ(p.averageUtilization(), 0.8);
    p.observe(0.4);
    EXPECT_DOUBLE_EQ(p.averageUtilization(), 0.6);
}

TEST(HistoryDvs, EmptyHistoryIsZero)
{
    HistoryDvsPolicy p;
    EXPECT_DOUBLE_EQ(p.averageUtilization(), 0.0);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kDown);
}

TEST(HistoryDvs, ResetClearsHistory)
{
    HistoryDvsPolicy p;
    p.observe(1.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.averageUtilization(), 0.0);
}

TEST(HistoryDvs, ThresholdBoundaryIsExclusive)
{
    // Exactly at a threshold: hold (decide uses strict comparisons).
    HistoryDvsPolicy p;
    p.observe(0.6);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kHold);
    p.reset();
    p.observe(0.4);
    EXPECT_EQ(p.decide(0.0), LevelDecision::kHold);
}

TEST(HistoryDvs, DecisionNames)
{
    EXPECT_STREQ(levelDecisionName(LevelDecision::kUp), "up");
    EXPECT_STREQ(levelDecisionName(LevelDecision::kDown), "down");
    EXPECT_STREQ(levelDecisionName(LevelDecision::kHold), "hold");
}

TEST(HistoryDvsDeath, BadParamsFatal)
{
    HistoryDvsParams p;
    p.slidingWindows = 0;
    EXPECT_DEATH(HistoryDvsPolicy policy(p), "sliding");
}
