/** @file Tests for the on/off link controller extension. */

#include <gtest/gtest.h>

#include "policy/on_off.hh"

using namespace oenet;

class OnOffTest : public ::testing::Test
{
  protected:
    OnOffTest() : levels_(BitrateLevelTable::linear(5.0, 10.0, 6))
    {
        OpticalLink::Params lp;
        link_ = std::make_unique<OpticalLink>("l", LinkKind::kInterRouter,
                                              levels_, lp);
    }

    OnOffController::Params params()
    {
        OnOffController::Params p;
        p.offThreshold = 0.05;
        p.slidingWindows = 2;
        return p;
    }

    BitrateLevelTable levels_;
    std::unique_ptr<OpticalLink> link_;
    bool waiting_ = false;
};

TEST_F(OnOffTest, IdleLinkTurnsOff)
{
    OnOffController c(*link_, [this] { return waiting_; }, params());
    link_->beginWindow(0);
    c.onWindow(1000);
    c.onWindow(2000);
    EXPECT_TRUE(link_->isOff());
    EXPECT_EQ(c.sleeps(), 1u);
}

TEST_F(OnOffTest, BusyLinkStaysOn)
{
    OnOffController c(*link_, [this] { return waiting_; }, params());
    link_->beginWindow(0);
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    for (Cycle t = 0; t < 1000; t += 2) {
        if (link_->canAccept(t))
            link_->accept(t, f);
        while (link_->hasArrival(t))
            (void)link_->popArrival(t);
    }
    c.onWindow(1000);
    EXPECT_FALSE(link_->isOff());
    EXPECT_EQ(c.sleeps(), 0u);
}

TEST_F(OnOffTest, PendingWorkBlocksSleep)
{
    waiting_ = true;
    OnOffController c(*link_, [this] { return waiting_; }, params());
    link_->beginWindow(0);
    c.onWindow(1000);
    EXPECT_FALSE(link_->isOff());
}

TEST_F(OnOffTest, WakesWhenWorkArrives)
{
    OnOffController c(*link_, [this] { return waiting_; }, params());
    link_->beginWindow(0);
    c.onWindow(1000);
    ASSERT_TRUE(link_->isOff());
    waiting_ = true;
    c.maybeWake(1500);
    EXPECT_FALSE(link_->isOff());
    EXPECT_EQ(c.wakes(), 1u);
    // Wakeup pays the CDR relock: usable 20 cycles later.
    EXPECT_FALSE(link_->canAccept(1510));
    EXPECT_TRUE(link_->canAccept(1520));
}

TEST_F(OnOffTest, OffLinkDrawsLeakageOnly)
{
    OnOffController c(*link_, [this] { return waiting_; }, params());
    link_->beginWindow(0);
    c.onWindow(1000);
    ASSERT_TRUE(link_->isOff());
    EXPECT_NEAR(link_->powerMw(2000), link_->params().offPowerMw, 1e-9);
}

TEST_F(OnOffTest, MaybeWakeNoOpWhenQuiet)
{
    OnOffController c(*link_, [this] { return waiting_; }, params());
    c.maybeWake(10);
    EXPECT_EQ(c.wakes(), 0u);
    EXPECT_FALSE(link_->isOff());
}
