/**
 * @file
 * Tests for the sender-backlog escalation stabilizer: utilization-only
 * control collapses into a low-rate equilibrium under backpressure
 * (a throttled link measures low L_u and keeps scaling down); the
 * backlog signal must pull saturated regions back up to full rate.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

RunMetrics
saturatedRun(bool escalation)
{
    SystemConfig cfg; // full 64-rack system
    cfg.senderBacklogEscalation = escalation;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 20000;
    p.drainLimit = 1; // open-loop: report delivered throughput
    return runExperiment(cfg, TrafficSpec::uniform(4.5, 4, 5), p);
}

} // namespace

TEST(BacklogEscalation, RestoresSaturationThroughput)
{
    SystemConfig base;
    base.powerAware = false;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 20000;
    p.drainLimit = 1;
    RunMetrics mb =
        runExperiment(base, TrafficSpec::uniform(4.5, 4, 5), p);

    RunMetrics with = saturatedRun(true);
    EXPECT_GT(with.throughputFlitsPerCycle,
              0.93 * mb.throughputFlitsPerCycle);
}

TEST(BacklogEscalation, AblationShowsTheFailureMode)
{
    // Without the stabilizer the power-aware fabric must deliver
    // measurably less at saturation — this documents the failure mode
    // the signal exists to fix (and guards against the escalation
    // silently becoming a no-op).
    RunMetrics with = saturatedRun(true);
    RunMetrics without = saturatedRun(false);
    EXPECT_GT(with.throughputFlitsPerCycle,
              1.05 * without.throughputFlitsPerCycle);
}

TEST(BacklogEscalation, NoEffectAtLightLoad)
{
    // At light load the backlog never builds, so the escalation must
    // not disturb the power floor.
    SystemConfig on;
    SystemConfig off;
    off.senderBacklogEscalation = false;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 15000;
    RunMetrics m_on =
        runExperiment(on, TrafficSpec::uniform(1.25, 4, 6), p);
    RunMetrics m_off =
        runExperiment(off, TrafficSpec::uniform(1.25, 4, 6), p);
    EXPECT_NEAR(m_on.normalizedPower, m_off.normalizedPower, 0.01);
}
