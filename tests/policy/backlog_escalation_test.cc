/**
 * @file
 * Tests for the sender-backlog escalation stabilizer: utilization-only
 * control collapses into a low-rate equilibrium under backpressure
 * (a throttled link measures low L_u and keeps scaling down); the
 * backlog signal must pull saturated regions back up to full rate.
 */

#include <gtest/gtest.h>

#include "core/sweeps.hh"

using namespace oenet;

namespace {

RunMetrics
saturatedRun(bool escalation, double rate = 4.5)
{
    SystemConfig cfg; // full 64-rack system
    cfg.senderBacklogEscalation = escalation;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 20000;
    p.drainLimit = 1; // open-loop: report delivered throughput
    return runExperiment(cfg, TrafficSpec::uniform(rate, 4, 5), p);
}

} // namespace

TEST(BacklogEscalation, RestoresSaturationThroughput)
{
    SystemConfig base;
    base.powerAware = false;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 20000;
    p.drainLimit = 1;
    RunMetrics mb =
        runExperiment(base, TrafficSpec::uniform(4.5, 4, 5), p);

    RunMetrics with = saturatedRun(true);
    EXPECT_GT(with.throughputFlitsPerCycle,
              0.93 * mb.throughputFlitsPerCycle);
}

TEST(BacklogEscalation, AblationShowsTheFailureMode)
{
    // Historical note: before the link's fractional serialization
    // credit was accounted exactly, a link under backpressure delivered
    // less than the capacity the policy measured utilization against,
    // and that gap fed a dramatic (~25%) throughput collapse without
    // the stabilizer. With serialization exact, the residual failure
    // mode is latency: past saturation the un-stabilized policy reacts
    // to backpressure late, and delivered throughput must still never
    // beat the stabilized run. Run deep into saturation to expose it.
    RunMetrics with = saturatedRun(true, 6.0);
    RunMetrics without = saturatedRun(false, 6.0);
    EXPECT_GE(with.throughputFlitsPerCycle,
              0.995 * without.throughputFlitsPerCycle);
    EXPECT_LT(with.avgLatency, 0.9 * without.avgLatency);
}

TEST(BacklogEscalation, NoEffectAtLightLoad)
{
    // At light load the backlog never builds, so the escalation must
    // not disturb the power floor.
    SystemConfig on;
    SystemConfig off;
    off.senderBacklogEscalation = false;
    RunProtocol p;
    p.warmup = 15000;
    p.measure = 15000;
    RunMetrics m_on =
        runExperiment(on, TrafficSpec::uniform(1.25, 4, 6), p);
    RunMetrics m_off =
        runExperiment(off, TrafficSpec::uniform(1.25, 4, 6), p);
    EXPECT_NEAR(m_on.normalizedPower, m_off.normalizedPower, 0.01);
}
