/** @file Tests for the proportional DVS policy extension. */

#include <gtest/gtest.h>

#include "core/sweeps.hh"
#include "policy/proportional.hh"

using namespace oenet;

TEST(ProportionalPolicy, ZeroDemandPicksBottomLevel)
{
    ProportionalDvsPolicy p;
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    p.observe(0.0);
    EXPECT_EQ(p.chooseLevel(levels), 0);
}

TEST(ProportionalPolicy, FullDemandPicksTopLevel)
{
    ProportionalDvsPolicy p;
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    p.observe(1.0); // one flit/cycle = full wire rate
    EXPECT_EQ(p.chooseLevel(levels), levels.maxLevel());
}

TEST(ProportionalPolicy, TargetUtilizationProvisioning)
{
    ProportionalDvsParams params;
    params.targetUtilization = 0.5;
    ProportionalDvsPolicy p(params);
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    // Demand 0.3 flits/cycle at 50% target needs 0.6 capacity ->
    // 6 Gb/s -> level 1.
    p.observe(0.3);
    EXPECT_EQ(p.chooseLevel(levels), 1);
    // Demand 0.42 needs 0.84 -> 9 Gb/s -> level 4.
    p.reset();
    p.observe(0.42);
    EXPECT_EQ(p.chooseLevel(levels), 4);
}

TEST(ProportionalPolicy, SlidingAverageSmooths)
{
    ProportionalDvsParams params;
    params.slidingWindows = 4;
    ProportionalDvsPolicy p(params);
    p.observe(0.8);
    p.observe(0.0);
    p.observe(0.0);
    p.observe(0.0);
    EXPECT_NEAR(p.predictedDemand(), 0.2, 1e-12);
}

TEST(ProportionalPolicy, HeadroomMultiplies)
{
    ProportionalDvsParams params;
    params.headroom = 2.0;
    ProportionalDvsPolicy p(params);
    p.observe(0.2);
    EXPECT_NEAR(p.predictedDemand(), 0.4, 1e-12);
}

TEST(ProportionalController, TracksLoadOnALink)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("p", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    ProportionalDvsParams params;
    params.slidingWindows = 1;
    ProportionalController ctrl(link, params);

    // Idle windows: drop to the bottom in ONE retarget.
    link.beginWindow(0);
    ctrl.onWindow(1000);
    // Wait out the transition (freq 20 + volt 100).
    EXPECT_EQ(link.currentLevel(), 0);
    EXPECT_EQ(ctrl.retargets(), 1u);

    // Saturate at the bottom rate, then expect an upward retarget.
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    Cycle t = 2000;
    for (; t < 4000; t++) {
        if (link.canAccept(t))
            link.accept(t, f);
        while (link.hasArrival(t))
            (void)link.popArrival(t);
    }
    ctrl.onWindow(4000);
    EXPECT_GT(link.currentLevel(), 0);
}

TEST(ProportionalMode, SystemIdleScalesDownFast)
{
    SystemConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 2;
    cfg.clusterSize = 2;
    cfg.policyMode = PolicyMode::kProportional;
    cfg.windowCycles = 200;
    PoeSystem sys(cfg);
    // One window plus one transition is enough for the jump-to-target
    // policy (the stepper needs five).
    sys.run(500);
    Network &net = sys.network();
    for (std::size_t i = 0; i < net.numLinks(); i++)
        EXPECT_EQ(net.link(i).currentLevel(), 0)
            << net.link(i).name();
}

TEST(ProportionalMode, DeliversUnderLoad)
{
    SystemConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 2;
    cfg.clusterSize = 2;
    cfg.policyMode = PolicyMode::kProportional;
    cfg.windowCycles = 200;
    RunProtocol p;
    p.warmup = 3000;
    p.measure = 8000;
    RunMetrics m = runExperiment(cfg, TrafficSpec::uniform(0.4, 4, 3),
                                 p);
    EXPECT_TRUE(m.drained);
    EXPECT_GT(m.packetsMeasured, 1000u);
    EXPECT_LT(m.normalizedPower, 0.5);
}

TEST(ProportionalModeDeath, BadTargetUtilizationFatal)
{
    ProportionalDvsParams p;
    p.targetUtilization = 0.0;
    EXPECT_EXIT(ProportionalDvsPolicy policy(p),
                ::testing::ExitedWithCode(1), "utilization");
}
