/** @file System-level tests for LinkController and PolicyEngine. */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace oenet;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.meshX = 2;
    c.meshY = 2;
    c.clusterSize = 2;
    c.windowCycles = 200;
    return c;
}

} // namespace

TEST(PolicyEngine, IdleNetworkScalesToMinimum)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.run(10000); // many windows, no traffic
    Network &net = sys.network();
    for (std::size_t i = 0; i < net.numLinks(); i++)
        EXPECT_EQ(net.link(i).currentLevel(), 0)
            << net.link(i).name();
    EXPECT_LT(sys.normalizedPowerNow(), 0.25);
}

TEST(PolicyEngine, NonPowerAwareStaysAtMax)
{
    SystemConfig cfg = smallConfig();
    cfg.powerAware = false;
    PoeSystem sys(cfg);
    sys.run(5000);
    Network &net = sys.network();
    for (std::size_t i = 0; i < net.numLinks(); i++)
        EXPECT_EQ(net.link(i).currentLevel(), 5);
    EXPECT_NEAR(sys.normalizedPowerNow(), 1.0, 1e-9);
}

TEST(PolicyEngine, StaticModePinsRequestedLevel)
{
    SystemConfig cfg = smallConfig();
    cfg.policyMode = PolicyMode::kStatic;
    cfg.staticLevel = 0;
    cfg.voltTransitionCycles = 0;
    cfg.freqTransitionCycles = 0;
    PoeSystem sys(cfg);
    sys.run(1000);
    Network &net = sys.network();
    for (std::size_t i = 0; i < net.numLinks(); i++)
        EXPECT_EQ(net.link(i).currentLevel(), 0);
}

TEST(PolicyEngine, DvsUpscalesUnderSustainedLoad)
{
    SystemConfig cfg = smallConfig();
    PoeSystem sys(cfg);
    sys.run(5000); // settle at the bottom
    Network &net = sys.network();
    ASSERT_EQ(net.link(0).currentLevel(), 0);

    // Saturate node 0 -> node 7 (crosses the mesh).
    sys.setTraffic(std::make_unique<UniformRandomTraffic>(
        [] {
            UniformRandomTraffic::Params p;
            p.numNodes = 8;
            p.rate = 2.0;
            p.packetLen = 8;
            p.seed = 2;
            return p;
        }()));
    sys.run(20000);

    // Under that load the fabric must have climbed well above the
    // bottom level on busy links and drawn more power than idle.
    int above = 0;
    for (std::size_t i = 0; i < net.numLinks(); i++)
        if (net.link(i).currentLevel() > 0)
            above++;
    EXPECT_GT(above, 4);
    ASSERT_NE(sys.engine(), nullptr);
    EXPECT_GT(sys.engine()->totalDecisionsUp(), 0u);
}

TEST(PolicyEngine, OnOffModeSleepsIdleLinks)
{
    SystemConfig cfg = smallConfig();
    cfg.policyMode = PolicyMode::kOnOff;
    PoeSystem sys(cfg);
    sys.run(5000);
    Network &net = sys.network();
    int off = 0;
    for (std::size_t i = 0; i < net.numLinks(); i++)
        if (net.link(i).isOff())
            off++;
    EXPECT_EQ(off, static_cast<int>(net.numLinks()));
    EXPECT_LT(sys.normalizedPowerNow(), 0.05);
}

TEST(PolicyEngine, OnOffDeliversTrafficAfterWake)
{
    SystemConfig cfg = smallConfig();
    cfg.policyMode = PolicyMode::kOnOff;
    PoeSystem sys(cfg);
    sys.run(5000); // everything asleep
    sys.setTraffic(std::make_unique<UniformRandomTraffic>(
        [] {
            UniformRandomTraffic::Params p;
            p.numNodes = 8;
            p.rate = 0.2;
            p.seed = 3;
            return p;
        }()));
    sys.startMeasurement();
    sys.run(10000);
    sys.stopMeasurement();
    EXPECT_TRUE(sys.awaitDrain(20000));
    RunMetrics m = sys.metrics();
    EXPECT_GT(m.packetsMeasured, 100u);
    EXPECT_TRUE(m.drained);
}

TEST(PolicyEngine, TriLevelOpticalDimsWhenIdle)
{
    SystemConfig cfg = smallConfig();
    cfg.scheme = LinkScheme::kModulator;
    cfg.opticalMode = OpticalMode::kTriLevel;
    cfg.laser.responseCycles = 200;
    cfg.laser.decisionEpochCycles = 1000;
    PoeSystem sys(cfg);
    sys.run(20000);
    Network &net = sys.network();
    // Idle: electrical at 5 Gb/s fits the mid band; optical must have
    // stepped down at least once on every link.
    for (std::size_t i = 0; i < net.numLinks(); i++)
        EXPECT_LT(net.link(i).opticalScale(), 1.0)
            << net.link(i).name();
}

TEST(PolicyEngine, OpticalGateHoldsElectricalUpgrade)
{
    SystemConfig cfg = smallConfig();
    cfg.scheme = LinkScheme::kModulator;
    cfg.opticalMode = OpticalMode::kTriLevel;
    cfg.laser.responseCycles = 5000; // slow VOA: stalls visible
    cfg.laser.decisionEpochCycles = 2000;
    PoeSystem sys(cfg);
    sys.run(20000); // settle: low rate, dimmed optics

    sys.setTraffic(std::make_unique<UniformRandomTraffic>(
        [] {
            UniformRandomTraffic::Params p;
            p.numNodes = 8;
            p.rate = 2.0;
            p.packetLen = 8;
            p.seed = 4;
            return p;
        }()));
    sys.run(40000);
    ASSERT_NE(sys.engine(), nullptr);
    // Some upgrades had to wait for light.
    EXPECT_GT(sys.engine()->totalOpticalStalls(), 0u);

    // Invariant: electrical bit rate never exceeds the optical band.
    Network &net = sys.network();
    for (std::size_t i = 0; i < net.numLinks(); i++) {
        OpticalLink &link = net.link(i);
        OpticalLevel level =
            link.opticalScale() >= 1.0
                ? OpticalLevel::kHigh
                : (link.opticalScale() >= 0.5 ? OpticalLevel::kMid
                                              : OpticalLevel::kLow);
        EXPECT_LE(link.currentBitRateGbps(),
                  maxBitRateForLevel(level) + 1e-9)
            << link.name();
    }
}

TEST(PolicyEngine, ModeNames)
{
    EXPECT_STREQ(policyModeName(PolicyMode::kDvs), "dvs");
    EXPECT_STREQ(policyModeName(PolicyMode::kOnOff), "on-off");
    EXPECT_STREQ(policyModeName(PolicyMode::kStatic), "static");
    EXPECT_STREQ(opticalModeName(OpticalMode::kFixed), "fixed");
    EXPECT_STREQ(opticalModeName(OpticalMode::kTriLevel), "tri-level");
}
