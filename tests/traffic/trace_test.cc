/** @file Tests for trace I/O and replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "traffic/trace.hh"

using namespace oenet;

namespace {

TraceData
sampleTrace()
{
    return {
        {0, 1, 2, 4},
        {0, 3, 4, 8},
        {5, 2, 1, 4},
        {100, 0, 7, 48},
    };
}

} // namespace

TEST(TraceIo, RoundTrip)
{
    std::string path = testing::TempDir() + "/oenet_trace_test.trc";
    TraceData trace = sampleTrace();
    saveTrace(path, trace);
    TraceData loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i++) {
        EXPECT_EQ(loaded[i].cycle, trace[i].cycle);
        EXPECT_EQ(loaded[i].src, trace[i].src);
        EXPECT_EQ(loaded[i].dst, trace[i].dst);
        EXPECT_EQ(loaded[i].len, trace[i].len);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ValidateAcceptsGoodTrace)
{
    TraceData trace = sampleTrace();
    validateTrace(trace, 8); // must not panic
}

TEST(TraceIoDeath, ValidateRejectsOutOfRangeNode)
{
    TraceData trace = sampleTrace();
    EXPECT_DEATH(validateTrace(trace, 4), "range");
}

TEST(TraceIoDeath, ValidateRejectsUnsorted)
{
    TraceData trace = {{10, 0, 1, 1}, {5, 0, 1, 1}};
    EXPECT_DEATH(validateTrace(trace, 8), "order");
}

TEST(TraceSource, ReplaysAtRecordedCycles)
{
    TraceData trace = sampleTrace();
    TraceSource src(trace);
    std::vector<PacketDesc> out;
    src.arrivals(0, out);
    EXPECT_EQ(out.size(), 2u);
    src.arrivals(4, out);
    EXPECT_EQ(out.size(), 2u);
    src.arrivals(5, out);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_FALSE(src.exhausted(5));
    src.arrivals(100, out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_TRUE(src.exhausted(100));
}

TEST(TraceSource, SkippedCyclesStillDeliverBacklog)
{
    TraceData trace = sampleTrace();
    TraceSource src(trace);
    std::vector<PacketDesc> out;
    src.arrivals(1000, out); // jump past everything
    EXPECT_EQ(out.size(), 4u);
}

TEST(TraceTimeline, BinsRates)
{
    TraceData trace = {
        {0, 0, 1, 1}, {1, 0, 1, 1}, {2, 0, 1, 1}, {10, 0, 1, 1},
    };
    auto timeline = traceRateTimeline(trace, 10);
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_DOUBLE_EQ(timeline[0], 0.3);
    EXPECT_DOUBLE_EQ(timeline[1], 0.1);
}

TEST(TraceTimeline, EmptyTrace)
{
    EXPECT_TRUE(traceRateTimeline({}, 10).empty());
    EXPECT_DOUBLE_EQ(traceMeanPacketLen({}), 0.0);
}

TEST(TraceStats, MeanPacketLen)
{
    EXPECT_DOUBLE_EQ(traceMeanPacketLen(sampleTrace()), 16.0);
}

TEST(TraceIoDeath, LoadRejectsBadMagic)
{
    std::string path = testing::TempDir() + "/oenet_bad_trace.trc";
    {
        std::ofstream out(path);
        out << "not-a-trace\n";
    }
    EXPECT_DEATH((void)loadTrace(path), "magic");
    std::remove(path.c_str());
}
