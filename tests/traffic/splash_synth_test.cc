/** @file Tests for the synthetic SPLASH-2-like trace generators. */

#include <gtest/gtest.h>

#include "traffic/splash_synth.hh"

using namespace oenet;

namespace {

SplashSynthParams
params(SplashKind kind)
{
    SplashSynthParams p;
    p.kind = kind;
    p.numNodes = 64;
    p.duration = 60000;
    p.seed = 5;
    return p;
}

} // namespace

TEST(SplashSynth, Names)
{
    EXPECT_STREQ(splashKindName(SplashKind::kFft), "fft");
    EXPECT_STREQ(splashKindName(SplashKind::kLu), "lu");
    EXPECT_STREQ(splashKindName(SplashKind::kRadix), "radix");
}

TEST(SplashSynth, TracesAreSortedAndValid)
{
    for (auto kind :
         {SplashKind::kFft, SplashKind::kLu, SplashKind::kRadix}) {
        auto trace = generateSplashTrace(params(kind));
        ASSERT_FALSE(trace.empty()) << splashKindName(kind);
        validateTrace(trace, 64);
        EXPECT_LT(trace.back().cycle, 60000u);
    }
}

TEST(SplashSynth, MeanPacketLengthIs48Flits)
{
    // RSIM traces in the paper average 48 flits per packet.
    auto trace = generateSplashTrace(params(SplashKind::kFft));
    EXPECT_NEAR(traceMeanPacketLen(trace), 48.0, 2.0);
}

TEST(SplashSynth, BimodalLengths)
{
    auto p = params(SplashKind::kLu);
    auto trace = generateSplashTrace(p);
    for (const auto &r : trace)
        EXPECT_TRUE(r.len == p.shortLen || r.len == p.longLen);
}

TEST(SplashSynth, DeterministicForSeed)
{
    auto a = generateSplashTrace(params(SplashKind::kRadix));
    auto b = generateSplashTrace(params(SplashKind::kRadix));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].src, b[i].src);
        EXPECT_EQ(a[i].dst, b[i].dst);
    }
}

TEST(SplashSynth, RateProfilesHaveTemporalVariance)
{
    // Each profile must swing by at least 4x between trough and peak —
    // that variance is what the power-aware policy exploits.
    for (auto kind :
         {SplashKind::kFft, SplashKind::kLu, SplashKind::kRadix}) {
        double lo = 1e9, hi = 0.0;
        for (Cycle t = 0; t < 60000; t += 100) {
            double r = splashRateAt(kind, t, 60000, 1.0);
            lo = std::min(lo, r);
            hi = std::max(hi, r);
        }
        EXPECT_GT(hi / lo, 4.0) << splashKindName(kind);
        EXPECT_GT(lo, 0.0) << splashKindName(kind);
    }
}

TEST(SplashSynth, FftHasLongSmoothWaves)
{
    // FFT's profile changes slowly: adjacent samples are close.
    Cycle duration = 100000;
    double max_step = 0.0;
    for (Cycle t = 100; t < duration; t += 100) {
        double a = splashRateAt(SplashKind::kFft, t - 100, duration, 1.0);
        double b = splashRateAt(SplashKind::kFft, t, duration, 1.0);
        max_step = std::max(max_step, std::abs(b - a));
    }
    EXPECT_LT(max_step, 0.05);
}

TEST(SplashSynth, RadixIsSpiky)
{
    // Radix jumps between quiet and burst segments: the largest
    // adjacent-sample step is big.
    Cycle duration = 100000;
    double max_step = 0.0;
    for (Cycle t = 100; t < duration; t += 100) {
        double a =
            splashRateAt(SplashKind::kRadix, t - 100, duration, 1.0);
        double b = splashRateAt(SplashKind::kRadix, t, duration, 1.0);
        max_step = std::max(max_step, std::abs(b - a));
    }
    EXPECT_GT(max_step, 0.15);
}

TEST(SplashSynth, RateScaleMultiplies)
{
    double base = splashRateAt(SplashKind::kFft, 5000, 60000, 1.0);
    double scaled = splashRateAt(SplashKind::kFft, 5000, 60000, 2.0);
    EXPECT_NEAR(scaled, 2.0 * base, 1e-12);
}

TEST(SplashSynth, RealizedRateMatchesProfile)
{
    auto p = params(SplashKind::kFft);
    auto trace = generateSplashTrace(p);
    // Compare realized arrivals against the analytic profile integral.
    double expected = 0.0;
    for (Cycle t = 0; t < p.duration; t++)
        expected += splashRateAt(p.kind, t, p.duration, p.rateScale);
    EXPECT_NEAR(static_cast<double>(trace.size()) / expected, 1.0, 0.05);
}

TEST(SplashSynth, ZeroAfterDuration)
{
    EXPECT_DOUBLE_EQ(splashRateAt(SplashKind::kLu, 60000, 60000, 1.0),
                     0.0);
}
