/** @file Tests for uniform random traffic. */

#include <gtest/gtest.h>

#include <map>

#include "traffic/uniform.hh"

using namespace oenet;

namespace {

UniformRandomTraffic::Params
params(double rate, int nodes = 64)
{
    UniformRandomTraffic::Params p;
    p.numNodes = nodes;
    p.rate = rate;
    p.packetLen = 4;
    p.seed = 11;
    return p;
}

} // namespace

TEST(UniformTraffic, RateMatchesLongRunAverage)
{
    UniformRandomTraffic src(params(1.5));
    std::vector<PacketDesc> out;
    const Cycle n = 50000;
    for (Cycle t = 0; t < n; t++)
        src.arrivals(t, out);
    EXPECT_NEAR(static_cast<double>(out.size()) / n, 1.5, 0.05);
}

TEST(UniformTraffic, ZeroRateProducesNothing)
{
    UniformRandomTraffic src(params(0.0));
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 1000; t++)
        src.arrivals(t, out);
    EXPECT_TRUE(out.empty());
}

TEST(UniformTraffic, NoSelfTraffic)
{
    UniformRandomTraffic src(params(2.0));
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 5000; t++)
        src.arrivals(t, out);
    for (const auto &p : out)
        EXPECT_NE(p.src, p.dst);
}

TEST(UniformTraffic, DestinationsCoverAllNodes)
{
    UniformRandomTraffic src(params(2.0, 16));
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 5000; t++)
        src.arrivals(t, out);
    std::map<NodeId, int> hist;
    for (const auto &p : out)
        hist[p.dst]++;
    EXPECT_EQ(hist.size(), 16u);
    // Roughly uniform: every node within 3x of the mean share.
    double mean = static_cast<double>(out.size()) / 16.0;
    for (const auto &kv : hist) {
        EXPECT_GT(kv.second, mean / 3.0);
        EXPECT_LT(kv.second, mean * 3.0);
    }
}

TEST(UniformTraffic, PacketLengthApplied)
{
    auto p = params(1.0);
    p.packetLen = 48;
    UniformRandomTraffic src(p);
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 100; t++)
        src.arrivals(t, out);
    for (const auto &d : out)
        EXPECT_EQ(d.len, 48);
}

TEST(UniformTraffic, DeterministicForSeed)
{
    UniformRandomTraffic a(params(1.0)), b(params(1.0));
    std::vector<PacketDesc> oa, ob;
    for (Cycle t = 0; t < 1000; t++) {
        a.arrivals(t, oa);
        b.arrivals(t, ob);
    }
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); i++) {
        EXPECT_EQ(oa[i].src, ob[i].src);
        EXPECT_EQ(oa[i].dst, ob[i].dst);
    }
}

TEST(UniformTraffic, OfferedRateReported)
{
    UniformRandomTraffic src(params(2.5));
    EXPECT_DOUBLE_EQ(src.offeredRate(0), 2.5);
    EXPECT_FALSE(src.exhausted(1000000));
}
