/** @file Tests for time-varying hot-spot traffic. */

#include <gtest/gtest.h>

#include <map>

#include "traffic/hotspot.hh"

using namespace oenet;

namespace {

HotspotTraffic::Params
params()
{
    HotspotTraffic::Params p;
    p.numNodes = 64;
    p.phases = {{0, 0.5}, {1000, 2.0}, {2000, 0.25}};
    p.hotNode = 10;
    p.hotWeight = 4;
    p.packetLen = 4;
    p.seed = 3;
    return p;
}

} // namespace

TEST(HotspotTraffic, FollowsPhaseSchedule)
{
    HotspotTraffic src(params());
    EXPECT_DOUBLE_EQ(src.offeredRate(0), 0.5);
    EXPECT_DOUBLE_EQ(src.offeredRate(999), 0.5);
    EXPECT_DOUBLE_EQ(src.offeredRate(1000), 2.0);
    EXPECT_DOUBLE_EQ(src.offeredRate(1999), 2.0);
    EXPECT_DOUBLE_EQ(src.offeredRate(2000), 0.25);
    EXPECT_DOUBLE_EQ(src.offeredRate(99999), 0.25);
}

TEST(HotspotTraffic, RandomAccessRateQueries)
{
    HotspotTraffic src(params());
    EXPECT_DOUBLE_EQ(src.offeredRate(2500), 0.25);
    EXPECT_DOUBLE_EQ(src.offeredRate(100), 0.5); // rewinds correctly
}

TEST(HotspotTraffic, RealizedRatesTrackSchedule)
{
    HotspotTraffic src(params());
    std::vector<PacketDesc> phase1, phase2;
    for (Cycle t = 0; t < 1000; t++)
        src.arrivals(t, phase1);
    for (Cycle t = 1000; t < 2000; t++)
        src.arrivals(t, phase2);
    EXPECT_NEAR(static_cast<double>(phase1.size()) / 1000, 0.5, 0.1);
    EXPECT_NEAR(static_cast<double>(phase2.size()) / 1000, 2.0, 0.2);
}

TEST(HotspotTraffic, HotNodeReceivesAboutFourTimesTraffic)
{
    auto p = params();
    p.phases = {{0, 4.0}};
    HotspotTraffic src(p);
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 20000; t++)
        src.arrivals(t, out);
    std::map<NodeId, int> hist;
    for (const auto &d : out)
        hist[d.dst]++;
    double other_mean = 0.0;
    int others = 0;
    for (const auto &kv : hist) {
        if (kv.first != p.hotNode) {
            other_mean += kv.second;
            others++;
        }
    }
    other_mean /= others;
    EXPECT_NEAR(hist[p.hotNode] / other_mean, 4.0, 0.5);
}

TEST(HotspotTraffic, DefaultScheduleShape)
{
    auto phases = defaultHotspotSchedule(100000);
    ASSERT_GE(phases.size(), 5u);
    EXPECT_EQ(phases.front().start, 0u);
    for (std::size_t i = 1; i < phases.size(); i++)
        EXPECT_GT(phases[i].start, phases[i - 1].start);
    // Contains both quiet and intense phases.
    double lo = 1e9, hi = 0.0;
    for (const auto &ph : phases) {
        lo = std::min(lo, ph.rate);
        hi = std::max(hi, ph.rate);
    }
    EXPECT_LT(lo, 1.0);
    EXPECT_GT(hi, 4.0);
}

TEST(HotspotTraffic, PaperHotNodeIsRack35Node4)
{
    HotspotTraffic::Params p;
    p.phases = {{0, 1.0}};
    HotspotTraffic src(p);
    // 8x8 mesh, 8/cluster: rack (3,5) is rack 43, node 4 -> 348.
    EXPECT_EQ(p.hotNode, 348u);
}

TEST(HotspotTrafficDeath, EmptyScheduleFatal)
{
    HotspotTraffic::Params p;
    p.phases = {};
    EXPECT_DEATH(HotspotTraffic src(p), "phase");
}

TEST(HotspotTrafficDeath, NonIncreasingScheduleFatal)
{
    HotspotTraffic::Params p;
    p.phases = {{0, 1.0}, {0, 2.0}};
    EXPECT_DEATH(HotspotTraffic src(p), "increase");
}
