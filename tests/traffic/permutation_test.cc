/** @file Tests for permutation traffic patterns. */

#include <gtest/gtest.h>

#include "traffic/permutation.hh"

using namespace oenet;

TEST(Permutation, BitComplement)
{
    EXPECT_EQ(permutationDestination(PermutationPattern::kBitComplement,
                                     0, 64, 4, 4, 4),
              63u);
    EXPECT_EQ(permutationDestination(PermutationPattern::kBitComplement,
                                     0b101010, 64, 4, 4, 4),
              0b010101u);
}

TEST(Permutation, BitReverse)
{
    // 64 nodes = 6 bits: 0b000001 -> 0b100000.
    EXPECT_EQ(permutationDestination(PermutationPattern::kBitReverse, 1,
                                     64, 4, 4, 4),
              32u);
    EXPECT_EQ(permutationDestination(PermutationPattern::kBitReverse,
                                     0b110100, 64, 4, 4, 4),
              0b001011u);
}

TEST(Permutation, Shuffle)
{
    // Rotate left: 0b100000 -> 0b000001.
    EXPECT_EQ(permutationDestination(PermutationPattern::kShuffle, 32,
                                     64, 4, 4, 4),
              1u);
    EXPECT_EQ(permutationDestination(PermutationPattern::kShuffle, 3,
                                     64, 4, 4, 4),
              6u);
}

TEST(Permutation, TransposeSwapsRackCoordinates)
{
    // 4x4 mesh, 4 per cluster. Node in rack (1,2) local 3.
    int rack = 2 * 4 + 1;
    auto src = static_cast<NodeId>(rack * 4 + 3);
    // Destination rack (2,1) local 3.
    int drack = 1 * 4 + 2;
    EXPECT_EQ(permutationDestination(PermutationPattern::kTranspose, src,
                                     64, 4, 4, 4),
              static_cast<NodeId>(drack * 4 + 3));
}

TEST(Permutation, TransposeDiagonalIsFixedPoint)
{
    int rack = 2 * 4 + 2;
    auto src = static_cast<NodeId>(rack * 4 + 1);
    EXPECT_EQ(permutationDestination(PermutationPattern::kTranspose, src,
                                     64, 4, 4, 4),
              src);
}

TEST(Permutation, TornadoHalfwayInX)
{
    // From rack (0,1) to rack (2,1) on a 4-wide mesh.
    auto src = static_cast<NodeId>((1 * 4 + 0) * 4 + 2);
    EXPECT_EQ(permutationDestination(PermutationPattern::kTornado, src,
                                     64, 4, 4, 4),
              static_cast<NodeId>((1 * 4 + 2) * 4 + 2));
}

TEST(Permutation, NeighborWrapsEast)
{
    auto src = static_cast<NodeId>((0 * 4 + 3) * 4 + 0); // rack (3,0)
    EXPECT_EQ(permutationDestination(PermutationPattern::kNeighbor, src,
                                     64, 4, 4, 4),
              static_cast<NodeId>((0 * 4 + 0) * 4 + 0)); // rack (0,0)
}

TEST(Permutation, AllPatternsArePermutations)
{
    // Injectivity check over all nodes (bit patterns need power of 2).
    for (auto pat :
         {PermutationPattern::kBitComplement,
          PermutationPattern::kBitReverse, PermutationPattern::kShuffle,
          PermutationPattern::kTranspose, PermutationPattern::kTornado,
          PermutationPattern::kNeighbor}) {
        std::vector<bool> hit(64, false);
        for (NodeId s = 0; s < 64; s++) {
            NodeId d = permutationDestination(pat, s, 64, 4, 4, 4);
            ASSERT_LT(d, 64u) << permutationPatternName(pat);
            EXPECT_FALSE(hit[d]) << permutationPatternName(pat)
                                 << " collides at " << d;
            hit[d] = true;
        }
    }
}

TEST(Permutation, SourceGeneratesOnlyPatternPairs)
{
    PermutationTraffic::Params p;
    p.pattern = PermutationPattern::kBitComplement;
    p.numNodes = 64;
    p.meshX = 4;
    p.meshY = 4;
    p.clusterSize = 4;
    p.rate = 1.0;
    PermutationTraffic src(p);
    std::vector<PacketDesc> out;
    for (Cycle t = 0; t < 2000; t++)
        src.arrivals(t, out);
    ASSERT_GT(out.size(), 100u);
    for (const auto &d : out)
        EXPECT_EQ(d.dst, permutationDestination(
                             PermutationPattern::kBitComplement, d.src,
                             64, 4, 4, 4));
}

TEST(Permutation, Names)
{
    EXPECT_STREQ(permutationPatternName(PermutationPattern::kTranspose),
                 "transpose");
    EXPECT_STREQ(permutationPatternName(PermutationPattern::kTornado),
                 "tornado");
}
