/** @file Tests for the bursty (on/off and self-similar) sources. */

#include <gtest/gtest.h>

#include "traffic/bursty.hh"

using namespace oenet;

namespace {

OnOffTraffic::Params
onOffParams()
{
    OnOffTraffic::Params p;
    p.numNodes = 64;
    p.burstRate = 2.0;
    p.idleRate = 0.02;
    p.meanBurstCycles = 1000.0;
    p.meanIdleCycles = 3000.0;
    p.seed = 5;
    return p;
}

} // namespace

TEST(OnOffTraffic, LongRunRateNearAnalyticMean)
{
    OnOffTraffic src(onOffParams());
    std::vector<PacketDesc> out;
    const Cycle n = 400000;
    for (Cycle t = 0; t < n; t++)
        src.arrivals(t, out);
    double realized = static_cast<double>(out.size()) / n;
    EXPECT_NEAR(realized, src.meanRate(), 0.15 * src.meanRate());
}

TEST(OnOffTraffic, MeanRateFormula)
{
    OnOffTraffic src(onOffParams());
    // 25% on at 2.0, 75% off at 0.02.
    EXPECT_NEAR(src.meanRate(), 0.25 * 2.0 + 0.75 * 0.02, 1e-9);
}

TEST(OnOffTraffic, AlternatesStates)
{
    OnOffTraffic src(onOffParams());
    std::vector<PacketDesc> out;
    int flips = 0;
    bool last = src.inBurst();
    for (Cycle t = 0; t < 100000; t++) {
        src.arrivals(t, out);
        if (src.inBurst() != last) {
            flips++;
            last = src.inBurst();
        }
    }
    // Mean period ~4000 cycles: expect on the order of 25 flips.
    EXPECT_GT(flips, 8);
    EXPECT_LT(flips, 100);
}

TEST(OnOffTraffic, BurstRateMuchHigherThanIdle)
{
    OnOffTraffic src(onOffParams());
    std::vector<PacketDesc> burst_out, idle_out;
    Cycle burst_cycles = 0, idle_cycles = 0;
    for (Cycle t = 0; t < 200000; t++) {
        std::vector<PacketDesc> out;
        src.arrivals(t, out);
        if (src.inBurst()) {
            burst_cycles++;
            burst_out.insert(burst_out.end(), out.begin(), out.end());
        } else {
            idle_cycles++;
            idle_out.insert(idle_out.end(), out.begin(), out.end());
        }
    }
    ASSERT_GT(burst_cycles, 0u);
    ASSERT_GT(idle_cycles, 0u);
    double burst_rate =
        static_cast<double>(burst_out.size()) / burst_cycles;
    double idle_rate = static_cast<double>(idle_out.size()) / idle_cycles;
    EXPECT_GT(burst_rate, 20.0 * idle_rate);
}

TEST(SelfSimilar, LongRunRateNearTarget)
{
    SelfSimilarTraffic::Params p;
    p.numNodes = 64;
    p.numSources = 32;
    p.targetRate = 1.0;
    p.seed = 7;
    SelfSimilarTraffic src(p);
    std::vector<PacketDesc> out;
    const Cycle n = 400000;
    for (Cycle t = 0; t < n; t++)
        src.arrivals(t, out);
    double realized = static_cast<double>(out.size()) / n;
    // Heavy-tailed periods make the sample mean converge *very*
    // slowly (that is the point of the model); on a 400k-cycle window
    // a single long ON period can swing the realized rate by tens of
    // percent. Only pin the right order of magnitude.
    EXPECT_GT(realized, 0.4);
    EXPECT_LT(realized, 2.0);
}

TEST(SelfSimilar, ActiveSourcesFluctuate)
{
    SelfSimilarTraffic::Params p;
    p.numNodes = 64;
    p.numSources = 32;
    p.targetRate = 1.0;
    p.seed = 9;
    SelfSimilarTraffic src(p);
    std::vector<PacketDesc> out;
    int lo = p.numSources, hi = 0;
    for (Cycle t = 0; t < 100000; t++) {
        src.arrivals(t, out);
        lo = std::min(lo, src.activeSources());
        hi = std::max(hi, src.activeSources());
    }
    EXPECT_LT(lo, hi); // genuinely varies
    EXPECT_GT(hi, p.numSources / 4);
}

TEST(SelfSimilar, VarianceExceedsPoissonAtCoarseBins)
{
    // The self-similar stream must be burstier than a Poisson stream
    // of equal mean: index of dispersion > 1.5 at 1000-cycle bins.
    SelfSimilarTraffic::Params p;
    p.numNodes = 64;
    p.numSources = 16;
    p.targetRate = 0.5;
    p.seed = 11;
    SelfSimilarTraffic src(p);
    constexpr Cycle kBin = 1000;
    constexpr int kBins = 300;
    std::vector<double> counts;
    for (int b = 0; b < kBins; b++) {
        std::vector<PacketDesc> out;
        for (Cycle t = 0; t < kBin; t++)
            src.arrivals(static_cast<Cycle>(b) * kBin + t, out);
        counts.push_back(static_cast<double>(out.size()));
    }
    double mean = 0.0;
    for (double c : counts)
        mean += c;
    mean /= kBins;
    double var = 0.0;
    for (double c : counts)
        var += (c - mean) * (c - mean);
    var /= kBins - 1;
    ASSERT_GT(mean, 0.0);
    EXPECT_GT(var / mean, 1.5);
}

TEST(SelfSimilarDeath, RejectsInfiniteMeanShapes)
{
    SelfSimilarTraffic::Params p;
    p.alphaOn = 0.9;
    EXPECT_EXIT(SelfSimilarTraffic src(p),
                ::testing::ExitedWithCode(1), "shape");
}
