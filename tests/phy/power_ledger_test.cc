/**
 * @file
 * LinkPowerLedger unit tests: the SoA columns must mirror a
 * TimeWeighted integrator *bitwise* (that equivalence is what keeps
 * leakage-off outputs byte-identical to the direct per-link walk),
 * per-VC energy attribution must split each link's integral by its
 * flit counts, and the batched thermal epoch must converge under the
 * leakage feedback loop.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "phy/power_ledger.hh"

using namespace oenet;

namespace {

ThermalParams
thermalOn()
{
    ThermalParams p;
    p.enabled = true;
    return p;
}

} // namespace

TEST(PowerLedger, MirrorsTimeWeightedBitwise)
{
    LinkPowerLedger led;
    led.configure(1, ThermalParams{}, 1.8);
    int id = led.addLink(0, 291.25, 5, 291.25, 1.0);

    TimeWeighted tw(291.25);
    // An awkward sequence on purpose: repeated same-cycle updates,
    // long gaps, irrational-ish values from a ramp interpolation.
    struct Step { Cycle at; double mw; };
    const Step steps[] = {{10, 61.25},   {10, 61.25},  {137, 119.703},
                          {137, 204.08}, {5000, 2.0},  {5001, 291.25},
                          {99999, 61.25}};
    for (const Step &s : steps) {
        tw.update(s.at, s.mw);
        led.updateDynamic(id, s.at, s.mw, s.mw / 291.25);
    }
    for (Cycle at : {Cycle{99999}, Cycle{100000}, Cycle{250000}}) {
        // Bitwise, not approximate: same folds in the same order.
        EXPECT_EQ(led.dynIntegralMwCycles(id, at), tw.integral(at));
        EXPECT_EQ(led.totalDynIntegralMwCycles(at), tw.integral(at));
    }
    EXPECT_EQ(led.dynPowerMw(id), tw.value());
    EXPECT_EQ(led.totalDynMw(), tw.value());
}

TEST(PowerLedger, ResetDynamicMirrorsTimeWeightedReset)
{
    LinkPowerLedger led;
    led.configure(2, ThermalParams{}, 1.8);
    int id = led.addLink(0, 291.25, 5, 291.25, 1.0);
    TimeWeighted tw(291.25);

    tw.update(100, 61.25);
    led.updateDynamic(id, 100, 61.25, 0.5);
    led.countFlit(id, 0);
    led.countFlit(id, 1);

    tw.reset(500);
    led.resetDynamic(id, 500);
    EXPECT_EQ(led.totalFlits(id), 0u);
    EXPECT_EQ(led.vcFlits(id, 0), 0u);
    EXPECT_EQ(led.vcFlits(id, 1), 0u);

    tw.update(900, 119.5);
    led.updateDynamic(id, 900, 119.5, 0.7);
    EXPECT_EQ(led.dynIntegralMwCycles(id, 1500), tw.integral(1500));
}

TEST(PowerLedger, UnstableFlagTracksSetStable)
{
    LinkPowerLedger led;
    led.configure(1, ThermalParams{}, 1.8);
    int a = led.addLink(0, 100.0, 0, 100.0, 1.0);
    int b = led.addLink(1, 100.0, 0, 100.0, 1.0);
    EXPECT_FALSE(led.isUnstable(a));
    EXPECT_FALSE(led.isUnstable(b));
    led.setStable(b, false);
    EXPECT_FALSE(led.isUnstable(a));
    EXPECT_TRUE(led.isUnstable(b));
    led.setStable(b, false); // idempotent
    EXPECT_TRUE(led.isUnstable(b));
    led.setStable(b, true);
    EXPECT_FALSE(led.isUnstable(b));
}

TEST(PowerLedger, AttributesEnergyByVcFlitShares)
{
    LinkPowerLedger led;
    led.configure(2, ThermalParams{}, 1.8);
    int a = led.addLink(0, 100.0, 0, 100.0, 1.0); // 100 mW constant
    int b = led.addLink(0, 200.0, 0, 200.0, 1.0); // 200 mW constant

    // Link a: 3 flits on VC0, 1 on VC1. Link b: all 4 on VC1.
    led.countFlit(a, 0);
    led.countFlit(a, 0);
    led.countFlit(a, 0);
    led.countFlit(a, 1);
    for (int i = 0; i < 4; i++)
        led.countFlit(b, 1);

    // At cycle 1000: a integrated 100k mW-cycles, b 200k.
    std::vector<double> vc;
    led.attributeVcEnergy(1000, vc);
    ASSERT_EQ(vc.size(), 2u);
    EXPECT_DOUBLE_EQ(vc[0], 100000.0 * 0.75);
    EXPECT_DOUBLE_EQ(vc[1], 100000.0 * 0.25 + 200000.0);

    // A link that carried nothing attributes nothing (no 0/0).
    int c = led.addLink(0, 50.0, 0, 50.0, 1.0);
    (void)c;
    led.attributeVcEnergy(1000, vc);
    EXPECT_DOUBLE_EQ(vc[0], 100000.0 * 0.75);
}

TEST(PowerLedger, ThermalDisabledContributesExactZero)
{
    LinkPowerLedger led;
    led.configure(1, ThermalParams{}, 1.8);
    int id = led.addLink(0, 291.25, 5, 291.25, 1.0);
    led.advanceThermal(100000); // must be a no-op
    EXPECT_EQ(led.leakPowerMw(id), 0.0);
    EXPECT_EQ(led.totalLeakMw(), 0.0);
    EXPECT_EQ(led.totalLeakIntegralMwCycles(123456), 0.0);
    EXPECT_EQ(led.effectivePowerMw(id), led.dynPowerMw(id));
}

TEST(PowerLedger, ThermalEpochConvergesWithLeakageFeedback)
{
    // One link at a constant 291.25 mW dynamic load, stepped through
    // thermal epochs: temperature must rise monotonically and settle
    // (no oscillation), leakage must grow with it, and the fixed
    // point must satisfy T = steadyTempC(dyn + leak(T)).
    ThermalParams p = thermalOn();
    LinkPowerLedger led;
    led.configure(1, p, 1.8);
    int id = led.addLink(0, 291.25, 5, 291.25, 1.0);

    LeakageModel model(p, 1.8);
    double leak0 = led.leakPowerMw(id);
    EXPECT_DOUBLE_EQ(leak0, 5.0); // reference-point leakage

    double prev = led.tempC(id);
    Cycle now = 0;
    for (int epoch = 1; epoch <= 8000; epoch++) {
        now = static_cast<Cycle>(epoch) * p.epochCycles;
        led.advanceThermal(now);
        double t = led.tempC(id);
        ASSERT_GE(t, prev - 1e-12) << "epoch " << epoch;
        prev = t;
    }
    double t_end = led.tempC(id);
    double leak_end = led.leakPowerMw(id);
    EXPECT_GT(t_end, 56.65); // leakage heats past the dynamic-only T_ss
    EXPECT_GT(leak_end, leak0);
    EXPECT_NEAR(t_end, model.steadyTempC(291.25 + leak_end), 1e-3);
    EXPECT_NEAR(leak_end, model.leakageMw(1.0, t_end), 1e-9);
    EXPECT_EQ(led.maxTempC(), t_end);

    // The leakage integral is consistent with the (piecewise-constant
    // per epoch) leakage power series: bounded by min/max power.
    double integral = led.totalLeakIntegralMwCycles(now);
    EXPECT_GT(integral, leak0 * static_cast<double>(now) - 1e-6);
    EXPECT_LT(integral, leak_end * static_cast<double>(now) + 1e-6);
}

TEST(PowerLedger, GatedLinkCoolsToAmbientAndStopsLeaking)
{
    ThermalParams p = thermalOn();
    LinkPowerLedger led;
    led.configure(1, p, 1.8);
    int id = led.addLink(0, 291.25, 5, 291.25, 1.0);

    // Warm it up, then gate it off (0 mW dynamic, vdd cut).
    for (int epoch = 1; epoch <= 2000; epoch++)
        led.advanceThermal(static_cast<Cycle>(epoch) * p.epochCycles);
    double hot = led.tempC(id);
    EXPECT_GT(hot, p.ambientC);

    led.updateDynamic(id, 2000 * p.epochCycles, 0.0, 0.0);
    double prev = led.tempC(id);
    for (int epoch = 2001; epoch <= 10000; epoch++) {
        led.advanceThermal(static_cast<Cycle>(epoch) * p.epochCycles);
        ASSERT_LE(led.tempC(id), prev + 1e-12);
        prev = led.tempC(id);
    }
    EXPECT_NEAR(led.tempC(id), p.ambientC, 1e-2);
    EXPECT_EQ(led.leakPowerMw(id), 0.0); // vdd_frac 0 -> no leakage
}
