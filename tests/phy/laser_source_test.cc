/** @file Tests for the external laser plant and optical level bands. */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "phy/laser_source.hh"

using namespace oenet;

TEST(OpticalLevels, FractionsHalveDownward)
{
    // Section 3.2.2: P_low = 0.5 P_mid, P_mid = 0.5 P_high.
    EXPECT_DOUBLE_EQ(opticalLevelFraction(OpticalLevel::kHigh), 1.0);
    EXPECT_DOUBLE_EQ(opticalLevelFraction(OpticalLevel::kMid), 0.5);
    EXPECT_DOUBLE_EQ(opticalLevelFraction(OpticalLevel::kLow), 0.25);
}

TEST(OpticalLevels, BandMapping)
{
    // <4 Gb/s low, 4-6 mid, 6-10 high.
    EXPECT_EQ(requiredOpticalLevel(3.3), OpticalLevel::kLow);
    EXPECT_EQ(requiredOpticalLevel(3.99), OpticalLevel::kLow);
    EXPECT_EQ(requiredOpticalLevel(4.0), OpticalLevel::kMid);
    EXPECT_EQ(requiredOpticalLevel(6.0), OpticalLevel::kMid);
    EXPECT_EQ(requiredOpticalLevel(6.01), OpticalLevel::kHigh);
    EXPECT_EQ(requiredOpticalLevel(10.0), OpticalLevel::kHigh);
}

TEST(OpticalLevels, BandCeilingsConsistentWithMapping)
{
    for (OpticalLevel level :
         {OpticalLevel::kLow, OpticalLevel::kMid, OpticalLevel::kHigh}) {
        EXPECT_EQ(requiredOpticalLevel(maxBitRateForLevel(level)), level);
    }
}

TEST(LaserSource, SplitsAcrossAllFibers)
{
    LaserSource src;
    EXPECT_EQ(src.totalFibers(), 64 * 20);
    EXPECT_GT(src.perFiberPowerMw(), 0.0);
}

TEST(LaserSource, PerFiberPowerAccountsForSplitAndLoss)
{
    LaserSourceParams p;
    p.outputPowerMw = 1280.0;
    p.rackFanout = 64;
    p.fiberFanout = 20;
    p.rackSplitLossDb = 0.0;
    p.fiberSplitLossDb = 0.0;
    LaserSource src(p);
    EXPECT_NEAR(src.perFiberPowerMw(), 1.0, 1e-9);

    p.rackSplitLossDb = 3.0103; // halves the power
    LaserSource lossy(p);
    EXPECT_NEAR(lossy.perFiberPowerMw(), 0.5, 1e-4);
}

TEST(LaserSource, LevelScalesDeliveredPower)
{
    LaserSource src;
    double full = src.perFiberPowerMw(OpticalLevel::kHigh);
    EXPECT_NEAR(src.perFiberPowerMw(OpticalLevel::kMid), full / 2, 1e-9);
    EXPECT_NEAR(src.perFiberPowerMw(OpticalLevel::kLow), full / 4, 1e-9);
}

TEST(LaserSource, ResponseTimeIs100Microseconds)
{
    LaserSource src;
    EXPECT_EQ(src.attenuatorResponseCycles(), microsToCycles(100.0));
    EXPECT_EQ(src.attenuatorResponseCycles(), 62500u);
}

TEST(LaserSource, DefaultPlantCoversReceiverSensitivity)
{
    // The shipped defaults must deliver the 25 uW a 10 Gb/s receiver
    // needs even at the lowest optical level, after a 6 dB path.
    LaserSource src;
    EXPECT_TRUE(src.supports(OpticalLevel::kLow, 0.025, 6.0));
}

TEST(LaserSource, SupportsReflectsPathLoss)
{
    LaserSourceParams p;
    p.outputPowerMw = 64.0 * 20.0 * 0.1; // 0.1 mW per fiber, lossless
    p.rackSplitLossDb = 0.0;
    p.fiberSplitLossDb = 0.0;
    LaserSource src(p);
    EXPECT_TRUE(src.supports(OpticalLevel::kHigh, 0.05, 3.0));
    EXPECT_FALSE(src.supports(OpticalLevel::kHigh, 0.05, 10.0));
}
