/** @file Tests for the receiver chain: detector, TIA, CDR (Eqs. 6-9). */

#include <gtest/gtest.h>

#include "phy/receiver.hh"

using namespace oenet;

TEST(Photodetector, SensitivityScalesWithBitRate)
{
    Photodetector d;
    // 25 uW at 10 Gb/s per Section 2.1.2.
    EXPECT_NEAR(d.requiredOpticalPowerMw(10.0), 0.025, 1e-12);
    EXPECT_NEAR(d.requiredOpticalPowerMw(5.0), 0.0125, 1e-12);
}

TEST(Photodetector, PowerUnderOneMilliwatt)
{
    // Section 2.2.1: detector power is < 1 mW at sensitivity-level
    // input — the reason it gets no dedicated power control.
    Photodetector d;
    EXPECT_LT(d.powerMw(d.requiredOpticalPowerMw(10.0)), 1.0);
    EXPECT_GT(d.powerMw(d.requiredOpticalPowerMw(10.0)), 0.0);
}

TEST(Photodetector, PowerLinearInReceivedLight)
{
    Photodetector d;
    EXPECT_NEAR(d.powerMw(0.2), 2.0 * d.powerMw(0.1), 1e-12);
}

TEST(Photodetector, ContrastRatioFactor)
{
    // Eq. 6 carries (CR+1)/(CR-1): lower contrast -> more dissipation.
    PhotodetectorParams lo;
    lo.contrastRatio = 2.0;
    PhotodetectorParams hi;
    hi.contrastRatio = 100.0;
    EXPECT_GT(Photodetector(lo).powerMw(0.1),
              Photodetector(hi).powerMw(0.1));
}

TEST(Photodetector, ResponsivityNearTheoretical)
{
    // q/(h*nu) at 1550 nm is ~1.25 A/W.
    Photodetector d;
    EXPECT_NEAR(d.photocurrentMa(1.0), 1.25, 0.01);
}

TEST(Tia, Table2PowerAtFullOperatingPoint)
{
    // 100 mW at (10 Gb/s, 1.8 V) (Table 2).
    Tia t;
    EXPECT_NEAR(t.powerMw(10.0, 1.8), 100.0, 1e-6);
}

TEST(Tia, BiasCurrentLinearInMaxRate)
{
    // Eq. 7: Ibias = c * BRmax.
    Tia t;
    EXPECT_NEAR(t.biasCurrentMa(10.0), 2.0 * t.biasCurrentMa(5.0),
                1e-9);
}

TEST(Tia, PowerScalesWithVddTimesBr)
{
    // Eq. 8 trend: Vdd * BR.
    Tia t;
    EXPECT_NEAR(t.powerMw(5.0, 0.9), 25.0, 1e-6);
}

TEST(Tia, OutputSwing)
{
    Tia t;
    // Ip * Rf: 0.05 mA * 2000 ohm = 100 mV.
    EXPECT_NEAR(t.outputSwingMv(0.05), 100.0, 1e-9);
}

TEST(Cdr, Table2PowerAtFullOperatingPoint)
{
    // 150 mW at (1.8 V, 10 Gb/s) (Table 2).
    Cdr c;
    EXPECT_NEAR(c.powerMw(1.8, 10.0), 150.0, 1e-6);
}

TEST(Cdr, QuadraticVoltageLinearRate)
{
    // Eq. 9 trend: Vdd^2 * BR.
    Cdr c;
    EXPECT_NEAR(c.powerMw(0.9, 10.0), 150.0 / 4.0, 1e-6);
    EXPECT_NEAR(c.powerMw(1.8, 5.0), 75.0, 1e-6);
    EXPECT_NEAR(c.powerMw(0.9, 5.0), 150.0 / 8.0, 1e-6);
}

TEST(Cdr, RelockTimeIsTwentyCycles)
{
    // Section 4.1: links disabled 20 network cycles after a bit-rate
    // transition for CDR relock.
    Cdr c;
    EXPECT_EQ(c.relockCycles(), 20u);
}
