/** @file Tests for bit-rate/voltage level tables. */

#include <gtest/gtest.h>

#include "phy/bitrate_levels.hh"

using namespace oenet;

TEST(BitrateLevels, PaperDefaultSixLevels)
{
    // Section 4.1: 6 levels over 5-10 Gb/s, 1.8 V at the top, 0.9 V at
    // the bottom (voltage linear in rate).
    auto t = BitrateLevelTable::linear(5.0, 10.0, 6);
    ASSERT_EQ(t.numLevels(), 6);
    EXPECT_DOUBLE_EQ(t.level(0).brGbps, 5.0);
    EXPECT_DOUBLE_EQ(t.level(5).brGbps, 10.0);
    EXPECT_DOUBLE_EQ(t.level(0).vddV, 0.9);
    EXPECT_DOUBLE_EQ(t.level(5).vddV, 1.8);
    EXPECT_DOUBLE_EQ(t.level(2).brGbps, 7.0);
    EXPECT_NEAR(t.level(2).vddV, 1.8 * 0.7, 1e-12);
}

TEST(BitrateLevels, AlternativeRange)
{
    auto t = BitrateLevelTable::linear(3.3, 10.0, 6);
    EXPECT_DOUBLE_EQ(t.minBitRateGbps(), 3.3);
    EXPECT_DOUBLE_EQ(t.maxBitRateGbps(), 10.0);
    EXPECT_NEAR(t.level(0).vddV, 1.8 * 0.33, 1e-12);
}

TEST(BitrateLevels, StrictlyIncreasing)
{
    auto t = BitrateLevelTable::linear(5.0, 10.0, 6);
    for (int i = 1; i < t.numLevels(); i++) {
        EXPECT_GT(t.level(i).brGbps, t.level(i - 1).brGbps);
        EXPECT_GT(t.level(i).vddV, t.level(i - 1).vddV);
    }
}

TEST(BitrateLevels, SingleLevelTable)
{
    auto t = BitrateLevelTable::linear(10.0, 10.0, 1);
    EXPECT_EQ(t.numLevels(), 1);
    EXPECT_DOUBLE_EQ(t.level(0).brGbps, 10.0);
    EXPECT_DOUBLE_EQ(t.level(0).vddV, 1.8);
}

TEST(BitrateLevels, LevelAtLeast)
{
    auto t = BitrateLevelTable::linear(5.0, 10.0, 6);
    EXPECT_EQ(t.levelAtLeast(4.0), 0);
    EXPECT_EQ(t.levelAtLeast(5.0), 0);
    EXPECT_EQ(t.levelAtLeast(5.1), 1);
    EXPECT_EQ(t.levelAtLeast(10.0), 5);
    EXPECT_EQ(t.levelAtLeast(99.0), 5); // clamps
}

TEST(BitrateLevels, CapacityFraction)
{
    auto t = BitrateLevelTable::linear(5.0, 10.0, 6);
    EXPECT_DOUBLE_EQ(t.capacityFraction(5), 1.0);
    EXPECT_DOUBLE_EQ(t.capacityFraction(0), 0.5);
}

TEST(BitrateLevels, ExplicitConstructionValidates)
{
    std::vector<BitrateLevel> good{{1.0, 0.5}, {2.0, 1.0}};
    BitrateLevelTable t(good);
    EXPECT_EQ(t.numLevels(), 2);
}

TEST(BitrateLevelsDeath, OutOfRangeLevelPanics)
{
    auto t = BitrateLevelTable::linear(5.0, 10.0, 6);
    EXPECT_DEATH((void)t.level(6), "range");
    EXPECT_DEATH((void)t.level(-1), "range");
}
