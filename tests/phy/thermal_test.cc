/**
 * @file
 * Golden-value tests for the leakage + thermal model (phy/thermal.hh)
 * at the paper's operating points, and the convergence property the
 * whole feedback loop rests on: the exact-exponential RC step is
 * monotone, so a fixed load settles to its equilibrium temperature
 * without oscillation or overshoot.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "phy/link_power.hh"
#include "phy/thermal.hh"

using namespace oenet;

namespace {

ThermalParams
enabledDefaults()
{
    ThermalParams p;
    p.enabled = true;
    return p;
}

} // namespace

TEST(LeakageModel, GoldenValuesAtReferenceTemperature)
{
    LeakageModel m(enabledDefaults(), 1.8);
    // Full supply at the reference temperature: both exponentials are
    // exactly 1, so leakage is subLeakMw + gateLeakMw.
    EXPECT_DOUBLE_EQ(m.leakageMw(1.0, 45.0), 5.0);
    // Half supply (the paper's 0.9 V point): 4*0.5 + 1*0.25.
    EXPECT_DOUBLE_EQ(m.leakageMw(0.5, 45.0), 2.25);
    // Power-gated links leak nothing (supply cut).
    EXPECT_DOUBLE_EQ(m.leakageMw(0.0, 45.0), 0.0);
    EXPECT_DOUBLE_EQ(m.leakageMw(-1.0, 90.0), 0.0);
}

TEST(LeakageModel, TemperatureScalingMatchesClosedForm)
{
    ThermalParams p = enabledDefaults();
    LeakageModel m(p, 1.8);
    // +30 C above reference = one sub-threshold e-folding.
    double expected = p.subLeakMw * std::exp(1.0) +
                      p.gateLeakMw * std::exp(30.0 / p.gateTempSlopeC);
    EXPECT_NEAR(m.leakageMw(1.0, 75.0), expected, 1e-12);
    // Leakage is strictly increasing in temperature.
    EXPECT_GT(m.leakageMw(1.0, 46.0), m.leakageMw(1.0, 45.0));
}

TEST(LeakageModel, DisabledModelLeaksNothing)
{
    // The leakage-off guarantee behind byte-identical outputs: a
    // disabled model contributes exactly 0.0, so the paper's dynamic
    // operating points are untouched.
    ThermalParams p; // enabled = false
    LeakageModel m(p, 1.8);
    EXPECT_EQ(m.leakageMw(1.0, 45.0), 0.0);
    EXPECT_EQ(m.leakageMw(1.0, 125.0), 0.0);

    LinkPowerModel dyn(LinkScheme::kVcsel);
    EXPECT_NEAR(dyn.powerMw(10.0, 1.8) + m.leakageMw(1.0, 45.0),
                291.25, 1e-6);
    EXPECT_NEAR(dyn.powerMw(5.0, 0.9) + m.leakageMw(0.5, 45.0), 61.25,
                1e-6);
}

TEST(LeakageModel, EffectivePowerAtPaperPointsWithLeakage)
{
    // With the model on and the junction at reference temperature,
    // the paper's two headline points gain exactly the reference
    // leakage: 291.25 + 5.0 and 61.25 + 2.25 mW.
    LeakageModel m(enabledDefaults(), 1.8);
    LinkPowerModel dyn(LinkScheme::kVcsel);
    EXPECT_NEAR(dyn.powerMw(10.0, 1.8) + m.leakageMw(1.0, 45.0),
                296.25, 1e-6);
    EXPECT_NEAR(dyn.powerMw(5.0, 0.9) + m.leakageMw(0.5, 45.0), 63.5,
                1e-6);
}

TEST(LeakageModel, SteadyTempMatchesThermalLaw)
{
    // T_ss = ambient + P[W] * R_th: 45 + 0.29125 * 40 = 56.65 C for a
    // full-rate link.
    LeakageModel m(enabledDefaults(), 1.8);
    EXPECT_NEAR(m.steadyTempC(291.25), 56.65, 1e-12);
    EXPECT_DOUBLE_EQ(m.steadyTempC(0.0), 45.0);
}

TEST(LeakageModel, StepConvergesMonotonicallyWithoutOvershoot)
{
    // Fixed 291.25 mW load from ambient: every epoch must move the
    // temperature strictly toward 56.65 C and never past it, for both
    // the default epoch and a pathologically long one (dt >> tau).
    LeakageModel m(enabledDefaults(), 1.8);
    double steady = m.steadyTempC(291.25);
    for (Cycle dt : {Cycle{1000}, Cycle{10000000}}) {
        double t = 45.0;
        for (int i = 0; i < 8000; i++) {
            double next = m.stepTempC(t, 291.25, dt);
            ASSERT_GE(next, t) << "dt=" << dt << " step " << i;
            ASSERT_LE(next, steady + 1e-9)
                << "dt=" << dt << " step " << i;
            t = next;
        }
        EXPECT_NEAR(t, steady, 1e-3) << "dt=" << dt;
    }
}

TEST(LeakageModel, CoolingIsMonotoneToo)
{
    // Dropping the load from a hot start relaxes downward, again
    // without crossing the new equilibrium.
    LeakageModel m(enabledDefaults(), 1.8);
    double steady = m.steadyTempC(61.25); // 47.45 C
    double t = 56.65;
    for (int i = 0; i < 8000; i++) {
        double next = m.stepTempC(t, 61.25, 1000);
        ASSERT_LE(next, t);
        ASSERT_GE(next, steady - 1e-9);
        t = next;
    }
    EXPECT_NEAR(t, steady, 1e-3);
}
