/** @file Tests for the MQW modulator and its driver (Eqs. 4-5). */

#include <gtest/gtest.h>

#include "phy/modulator.hh"

using namespace oenet;

TEST(MqwModulator, PowerProportionalToInputLight)
{
    // Eq. 4 is linear in PI.
    MqwModulator m;
    double p1 = m.powerMw(1.0);
    double p2 = m.powerMw(2.0);
    EXPECT_GT(p1, 0.0);
    EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
}

TEST(MqwModulator, MatchesEquationFour)
{
    MqwModulatorParams p;
    p.responsivityAPerW = 0.8;
    p.insertionLoss = 0.2;
    p.contrastRatio = 10.0;
    p.biasVoltageV = 2.0;
    p.vddV = 1.8;
    MqwModulator m(p);
    double pi = 1.0; // mW
    double expected = 0.5 * 0.8 * pi *
                      (0.2 * (2.0 - 1.8) +
                       (1.0 - (1.0 - 0.2) / 10.0) * 2.0);
    EXPECT_NEAR(m.powerMw(pi), expected, 1e-12);
}

TEST(MqwModulator, OnStatePassesMostLight)
{
    MqwModulator m;
    double in = 1.0;
    EXPECT_NEAR(m.onOutputMw(in), 1.0 - m.params().insertionLoss, 1e-12);
    EXPECT_GT(m.onOutputMw(in), m.offOutputMw(in));
}

TEST(MqwModulator, ContrastRatioHolds)
{
    MqwModulator m;
    double in = 2.0;
    EXPECT_NEAR(m.onOutputMw(in) / m.offOutputMw(in),
                m.params().contrastRatio, 1e-9);
}

TEST(MqwModulator, AverageOutputBetweenOnAndOff)
{
    MqwModulator m;
    double avg = m.averageOutputMw(1.0);
    EXPECT_GT(avg, m.offOutputMw(1.0));
    EXPECT_LT(avg, m.onOutputMw(1.0));
}

TEST(MqwModulatorDeath, RejectsContrastBelowOne)
{
    MqwModulatorParams p;
    p.contrastRatio = 0.5;
    EXPECT_DEATH(MqwModulator m(p), "contrast");
}

TEST(ModulatorDriver, Table2PowerAtFullRate)
{
    // 40 mW at 10 Gb/s (Table 2).
    ModulatorDriver d;
    EXPECT_NEAR(d.powerMw(10.0), 40.0, 1e-9);
}

TEST(ModulatorDriver, LinearInBitRateOnly)
{
    // Eq. 5 with Vdd fixed (Section 2.3): P ~ BR.
    ModulatorDriver d;
    EXPECT_NEAR(d.powerMw(5.0), 20.0, 1e-9);
    EXPECT_NEAR(d.powerMw(3.3), 13.2, 1e-9);
    EXPECT_NEAR(d.powerMw(0.0), 0.0, 1e-12);
}
