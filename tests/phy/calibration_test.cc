/** @file Tests for the calibration file feed-in path. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "phy/calibration.hh"

using namespace oenet;

namespace {

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

} // namespace

TEST(Calibration, RoundTripDefaults)
{
    std::string path = tempPath("oenet_cal_defaults.cal");
    LinkCalibration cal;
    saveLinkCalibration(path, cal);
    LinkCalibration loaded = loadLinkCalibration(path);
    EXPECT_DOUBLE_EQ(loaded.power.vcselMw, cal.power.vcselMw);
    EXPECT_DOUBLE_EQ(loaded.power.tiaMw, cal.power.tiaMw);
    EXPECT_DOUBLE_EQ(loaded.power.cdrMw, cal.power.cdrMw);
    EXPECT_DOUBLE_EQ(loaded.power.vmaxV, cal.power.vmaxV);
    EXPECT_FALSE(loaded.levels.has_value());
    std::remove(path.c_str());
}

TEST(Calibration, RoundTripWithMeasuredLevels)
{
    std::string path = tempPath("oenet_cal_levels.cal");
    LinkCalibration cal;
    cal.power.cdrMw = 120.0;
    cal.levels = BitrateLevelTable(
        {{4.8, 0.85}, {7.2, 1.3}, {9.6, 1.75}});
    saveLinkCalibration(path, cal);
    LinkCalibration loaded = loadLinkCalibration(path);
    EXPECT_DOUBLE_EQ(loaded.power.cdrMw, 120.0);
    ASSERT_TRUE(loaded.levels.has_value());
    EXPECT_EQ(loaded.levels->numLevels(), 3);
    EXPECT_DOUBLE_EQ(loaded.levels->level(1).brGbps, 7.2);
    EXPECT_DOUBLE_EQ(loaded.levels->level(1).vddV, 1.3);
    std::remove(path.c_str());
}

TEST(Calibration, ParsesCommentsAndWhitespace)
{
    std::string path = tempPath("oenet_cal_comments.cal");
    {
        std::ofstream out(path);
        out << "# measured on chip 7\n";
        out << "\n";
        out << "  tia_mw =  88.5  # bench supply 1.8 V\n";
        out << "level = 5.0 0.9\n";
        out << "level = 10.0 1.8\n";
    }
    LinkCalibration cal = loadLinkCalibration(path);
    EXPECT_DOUBLE_EQ(cal.power.tiaMw, 88.5);
    ASSERT_TRUE(cal.levels.has_value());
    EXPECT_EQ(cal.levels->numLevels(), 2);
    std::remove(path.c_str());
}

TEST(Calibration, LoadedParamsDriveLinkPowerModel)
{
    std::string path = tempPath("oenet_cal_model.cal");
    {
        std::ofstream out(path);
        out << "vcsel_mw = 20\nvcsel_driver_mw = 8\n"
            << "tia_mw = 90\ncdr_mw = 130\ndetector_mw = 1\n"
            << "mod_driver_mw = 35\nvmax_v = 1.8\nbr_max_gbps = 10\n";
    }
    LinkCalibration cal = loadLinkCalibration(path);
    LinkPowerModel model(LinkScheme::kVcsel, cal.power);
    EXPECT_NEAR(model.maxPowerMw(), 20 + 8 + 90 + 130 + 1, 1e-9);
    std::remove(path.c_str());
}

TEST(CalibrationDeath, UnknownKeyFatal)
{
    std::string path = tempPath("oenet_cal_bad.cal");
    {
        std::ofstream out(path);
        out << "flux_capacitor_mw = 3\n";
    }
    EXPECT_EXIT((void)loadLinkCalibration(path),
                ::testing::ExitedWithCode(1), "unknown");
    std::remove(path.c_str());
}

TEST(CalibrationDeath, MalformedLevelFatal)
{
    std::string path = tempPath("oenet_cal_badlevel.cal");
    {
        std::ofstream out(path);
        out << "level = 5.0\n";
    }
    EXPECT_EXIT((void)loadLinkCalibration(path),
                ::testing::ExitedWithCode(1), "level");
    std::remove(path.c_str());
}

TEST(CalibrationDeath, MissingFileFatal)
{
    EXPECT_EXIT((void)loadLinkCalibration("/nonexistent/file.cal"),
                ::testing::ExitedWithCode(1), "open");
}
