/**
 * @file
 * Tests pinning the whole-link power model to Table 2 and to the
 * paper's headline numbers (~290 mW at full rate, 61.25 mW for a
 * 5 Gb/s VCSEL link, ~80% savings), plus consistency between the trend
 * model and the Eqs. 1-9 component models.
 */

#include <gtest/gtest.h>

#include "phy/link_power.hh"
#include "phy/modulator.hh"
#include "phy/receiver.hh"
#include "phy/vcsel.hh"

using namespace oenet;

TEST(LinkPower, VcselLinkAtFullRateMatchesPaper)
{
    LinkPowerModel m(LinkScheme::kVcsel);
    auto d = m.breakdown(10.0, 1.8);
    EXPECT_NEAR(d.txLaserMw, 30.0, 1e-9);
    EXPECT_NEAR(d.txDriverMw, 10.0, 1e-9);
    EXPECT_NEAR(d.tiaMw, 100.0, 1e-9);
    EXPECT_NEAR(d.cdrMw, 150.0, 1e-9);
    // "approximately 40 mW" transmitter, "approximately 250 mW"
    // receiver, "a total of 290 mW per link".
    EXPECT_NEAR(d.txLaserMw + d.txDriverMw, 40.0, 1e-9);
    EXPECT_NEAR(d.detectorMw + d.tiaMw + d.cdrMw, 250.0, 1.5);
    EXPECT_NEAR(d.totalMw, 290.0, 1.5);
}

TEST(LinkPower, VcselLinkAtFiveGbpsIs61mw)
{
    // Section 4.1: "this lowers link power consumption to 61.25 mW at
    // 5 Gb/s for a VCSEL-based link".
    LinkPowerModel m(LinkScheme::kVcsel);
    EXPECT_NEAR(m.powerMw(5.0, 0.9), 61.25, 1e-6);
}

TEST(LinkPower, VcselSavingsAboutEightyPercent)
{
    LinkPowerModel m(LinkScheme::kVcsel);
    double saving = 1.0 - m.powerMw(5.0, 0.9) / m.maxPowerMw();
    EXPECT_GT(saving, 0.75);
    EXPECT_LT(saving, 0.85);
}

TEST(LinkPower, ModulatorLinkAtFullRate)
{
    LinkPowerModel m(LinkScheme::kModulator);
    auto d = m.breakdown(10.0, 1.8);
    EXPECT_DOUBLE_EQ(d.txLaserMw, 0.0); // external laser off-budget
    EXPECT_NEAR(d.txDriverMw, 40.0, 1e-9);
    EXPECT_NEAR(d.totalMw, 290.0, 1.5);
}

TEST(LinkPower, ModulatorDriverDoesNotScaleWithVoltage)
{
    // Section 2.3: the modulator driver's supply is fixed.
    LinkPowerModel m(LinkScheme::kModulator);
    auto full = m.breakdown(10.0, 1.8);
    auto lowv = m.breakdown(10.0, 0.9);
    EXPECT_DOUBLE_EQ(full.txDriverMw, lowv.txDriverMw);
}

TEST(LinkPower, VcselSchemeBeatsModulatorWhenScaled)
{
    // Section 4.3.2 / Fig. 6(d): the VCSEL link's driver scales with
    // V^2*BR while the modulator driver only scales with BR, so scaled
    // down the VCSEL link draws less.
    LinkPowerModel v(LinkScheme::kVcsel);
    LinkPowerModel m(LinkScheme::kModulator);
    EXPECT_LT(v.powerMw(5.0, 0.9), m.powerMw(5.0, 0.9));
    // At full rate both are essentially equal.
    EXPECT_NEAR(v.maxPowerMw(), m.maxPowerMw(), 1.0);
}

TEST(LinkPower, OpticalScaleAffectsOnlyModulatorDetector)
{
    LinkPowerModel m(LinkScheme::kModulator);
    auto full = m.breakdown(5.0, 0.9, 1.0);
    auto dim = m.breakdown(5.0, 0.9, 0.25);
    EXPECT_LT(dim.detectorMw, full.detectorMw);
    EXPECT_DOUBLE_EQ(dim.txDriverMw, full.txDriverMw);
    EXPECT_DOUBLE_EQ(dim.tiaMw, full.tiaMw);
}

TEST(LinkPower, MonotonicInBitRateAndVoltage)
{
    for (LinkScheme scheme :
         {LinkScheme::kVcsel, LinkScheme::kModulator}) {
        LinkPowerModel m(scheme);
        double prev = 0.0;
        for (int i = 0; i < 6; i++) {
            double br = 5.0 + i;
            double v = 1.8 * br / 10.0;
            double p = m.powerMw(br, v);
            EXPECT_GT(p, prev) << linkSchemeName(scheme) << " level "
                               << i;
            prev = p;
        }
    }
}

TEST(LinkPower, TrendModelConsistentWithComponentEquations)
{
    // The trend-based network model must track the physical Eqs. 1-9
    // component models across the operating range (within ~12%: the
    // VCSEL's bias floor is the only structural difference).
    LinkPowerModel trend(LinkScheme::kVcsel);
    Vcsel vcsel;
    VcselDriver driver;
    Tia tia;
    Cdr cdr;
    for (double br : {5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
        double v = 1.8 * br / 10.0;
        double physical = vcsel.averagePowerMw(v) +
                          driver.powerMw(v, br) + tia.powerMw(br, v) +
                          cdr.powerMw(v, br);
        double modeled = trend.powerMw(br, v) -
                         trend.breakdown(br, v).detectorMw;
        EXPECT_NEAR(modeled / physical, 1.0, 0.12) << "at " << br;
    }
}

TEST(LinkPower, SchemeNames)
{
    EXPECT_STREQ(linkSchemeName(LinkScheme::kVcsel), "vcsel");
    EXPECT_STREQ(linkSchemeName(LinkScheme::kModulator), "modulator");
}
