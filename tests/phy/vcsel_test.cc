/** @file Tests for the VCSEL transmitter models (Eqs. 1-3, Table 2). */

#include <gtest/gtest.h>

#include "phy/vcsel.hh"

using namespace oenet;

TEST(Vcsel, NoEmissionBelowThreshold)
{
    Vcsel v;
    EXPECT_DOUBLE_EQ(v.emittedOpticalPowerMw(0.0), 0.0);
    EXPECT_DOUBLE_EQ(
        v.emittedOpticalPowerMw(v.params().thresholdMa), 0.0);
}

TEST(Vcsel, EmissionLinearAboveThreshold)
{
    // Eq. 1: Pe = S * (I - Ith).
    Vcsel v;
    double s = v.params().slopeWPerA;
    double ith = v.params().thresholdMa;
    EXPECT_NEAR(v.emittedOpticalPowerMw(ith + 10.0), s * 10.0, 1e-12);
    EXPECT_NEAR(v.emittedOpticalPowerMw(ith + 20.0), s * 20.0, 1e-12);
}

TEST(Vcsel, Table2PowerAtFullOperatingPoint)
{
    // 30 mW at the full driver supply (Table 2).
    Vcsel v;
    EXPECT_NEAR(v.averagePowerMw(1.8), 30.0, 1e-9);
}

TEST(Vcsel, PowerTracksSupplyVoltage)
{
    // Eq. 2 with Im ~ Vdd: scaling trend ~ Vdd (Table 2). The small
    // bias-current floor keeps it slightly above exact proportionality.
    Vcsel v;
    double full = v.averagePowerMw(1.8);
    double half = v.averagePowerMw(0.9);
    EXPECT_LT(half, 0.6 * full);
    EXPECT_GT(half, 0.45 * full);
}

TEST(Vcsel, ModulationCurrentClampsAtVmax)
{
    Vcsel v;
    EXPECT_DOUBLE_EQ(v.modulationCurrentMa(2.5),
                     v.params().modulationMaxMa);
    EXPECT_DOUBLE_EQ(v.modulationCurrentMa(-1.0), 0.0);
}

TEST(Vcsel, OpticalOutputScalesWithSupply)
{
    Vcsel v;
    double full = v.averageOpticalPowerMw(1.8);
    double half = v.averageOpticalPowerMw(0.9);
    EXPECT_GT(full, 0.0);
    EXPECT_LT(half, full);
    // Roughly halved light at half drive.
    EXPECT_NEAR(half / full, 0.5, 0.1);
}

TEST(VcselDriver, Table2PowerAtFullOperatingPoint)
{
    // 10 mW at (1.8 V, 10 Gb/s) (Table 2).
    VcselDriver d;
    EXPECT_NEAR(d.powerMw(1.8, 10.0), 10.0, 1e-9);
}

TEST(VcselDriver, QuadraticInVoltage)
{
    // Eq. 3: P ~ Vdd^2 * BR.
    VcselDriver d;
    EXPECT_NEAR(d.powerMw(0.9, 10.0), 2.5, 1e-9);
}

TEST(VcselDriver, LinearInBitRate)
{
    VcselDriver d;
    EXPECT_NEAR(d.powerMw(1.8, 5.0), 5.0, 1e-9);
    EXPECT_NEAR(d.powerMw(1.8, 0.0), 0.0, 1e-12);
}

TEST(VcselDriver, CombinedScaling)
{
    // Half voltage and half rate: 1/8 of full power.
    VcselDriver d;
    EXPECT_NEAR(d.powerMw(0.9, 5.0), 10.0 / 8.0, 1e-9);
}
