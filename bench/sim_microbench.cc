/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * the RNG, the arbiter, link accept/pop, router tick (idle and
 * loaded), and a full-system cycle at the paper's 64-rack scale.
 * These guard the simulator's own performance, which bounds how much
 * of the paper's design space the figure benches can sweep.
 *
 * Regression workflow: run with
 *     bench_sim_microbench --benchmark_format=json \
 *         --benchmark_out=BENCH_sim_microbench.json
 * and compare against the committed baseline at the repo root with
 *     python3 bench/perf_compare.py BENCH_sim_microbench.json NEW.json
 * The BM_SystemCycleIdle / BM_SystemCycleIdleNoElision pair measures
 * the idle-elision win within a single run (machine-independent);
 * perf_compare.py --expect-ratio asserts it stays >= 3x. The
 * BM_PowerAccountingDirect / BM_PowerAccountingLedger pair does the
 * same for the SoA power ledger (>= 1.3x with leakage + thermal on).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/experiment.hh"
#include "core/poe_system.hh"
#include "network/boundary.hh"
#include "network/power_report.hh"
#include "router/router.hh"

using namespace oenet;

namespace {

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngPoisson(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.poisson(2.0));
}
BENCHMARK(BM_RngPoisson);

void
BM_ArbiterPick(benchmark::State &state)
{
    RoundRobinArbiter arb(12);
    std::uint64_t req = 0b101001011011;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(req));
}
BENCHMARK(BM_ArbiterPick);

void
BM_LinkAcceptPop(benchmark::State &state)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("b", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    Cycle t = 0;
    for (auto _ : state) {
        if (link.canAccept(t))
            link.accept(t, f);
        while (link.hasArrival(t))
            benchmark::DoNotOptimize(link.popArrival(t));
        t++;
    }
}
BENCHMARK(BM_LinkAcceptPop);

void
BM_SystemCycleIdle(benchmark::State &state)
{
    SystemConfig cfg; // full 64-rack system, idle elision on (default)
    PoeSystem sys(cfg);
    sys.run(5000); // let the policy settle
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleIdle)->Unit(benchmark::kMicrosecond);

void
BM_SystemCycleIdleNoElision(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.idleElision = false; // tick all 64 routers + 512 nodes anyway
    PoeSystem sys(cfg);
    sys.run(5000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleIdleNoElision)->Unit(benchmark::kMicrosecond);

void
BM_SystemCycleLoaded(benchmark::State &state)
{
    SystemConfig cfg;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(5000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleLoaded)->Unit(benchmark::kMicrosecond);

void
BM_SmallSystemCycleLoaded(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 2;
    cfg.clusterSize = 2;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.3, 4, 3), cfg));
    sys.run(2000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SmallSystemCycleLoaded)->Unit(benchmark::kMicrosecond);

// A hand-wired router held at saturation: four direction inputs feed
// endless 4-flit packets with rotating destinations while the harness
// plays upstream (respects credits) and downstream (returns credits).
// Every tick runs the full allocator walk — SA nomination masks, VA
// request collection, switch traversal — over the SoA hot state, which
// is exactly the loaded path the fig7 benches spend their time in.
void
BM_LoadedRouterTick(benchmark::State &state)
{
    constexpr int kCluster = 2;
    constexpr int kVcDepth = 8; // 16 deep / 2 VCs
    MeshTopology mesh(2, 2, kCluster);
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    Router::Params rp;
    rp.numVcs = 2;
    rp.bufferDepthPerPort = 16;
    Router router("r0", 0, mesh, rp);

    struct Probe final : CreditSink
    {
        int returned[8][2] = {};
        void returnCredit(int port, int vc, Cycle) override
        {
            returned[port][vc]++;
        }
    } probe;

    int ports = mesh.portsPerRouter();
    OpticalLink::Params lp;
    std::vector<std::unique_ptr<OpticalLink>> ins, outs;
    for (int p = 0; p < ports; p++) {
        ins.push_back(std::make_unique<OpticalLink>(
            "in" + std::to_string(p), LinkKind::kInterRouter, levels,
            lp));
        outs.push_back(std::make_unique<OpticalLink>(
            "out" + std::to_string(p), LinkKind::kInterRouter, levels,
            lp));
        router.connectInput(p, ins[p].get(), &probe, p);
        router.connectOutput(p, outs[p].get(), kVcDepth);
    }

    // Per direction port: a looping stream of flitized packets, VCs
    // alternating per packet, destinations rotating over all 8 nodes.
    struct Feeder
    {
        std::vector<Flit> flits;
        std::size_t next = 0;
        int sent[2] = {};
    };
    std::vector<Feeder> feeders(static_cast<std::size_t>(ports));
    PacketId id = 1;
    std::vector<Flit> pkt;
    for (int p = kCluster; p < ports; p++) {
        for (int i = 0; i < 16; i++) {
            pkt.clear();
            flitizePacket(pkt, id, 0,
                          static_cast<NodeId>(id * 3 % 8), 4, 0);
            for (Flit &f : pkt) {
                f.vc = static_cast<std::uint8_t>(i & 1);
                feeders[static_cast<std::size_t>(p)].flits.push_back(f);
            }
            id++;
        }
    }

    Cycle t = 0;
    for (auto _ : state) {
        router.tick(t);
        for (int p = kCluster; p < ports; p++) {
            Feeder &fd = feeders[static_cast<std::size_t>(p)];
            const Flit &f = fd.flits[fd.next];
            int vc = f.vc;
            if (ins[static_cast<std::size_t>(p)]->canAccept(t) &&
                fd.sent[vc] - probe.returned[p][vc] < kVcDepth) {
                ins[static_cast<std::size_t>(p)]->accept(t, f);
                fd.sent[vc]++;
                fd.next = (fd.next + 1) % fd.flits.size();
            }
        }
        for (int q = 0; q < ports; q++) {
            auto &out = outs[static_cast<std::size_t>(q)];
            while (out->hasArrival(t)) {
                Flit f = out->popArrival(t);
                router.returnCredit(q, f.vc, t);
            }
        }
        t++;
    }
}
BENCHMARK(BM_LoadedRouterTick);

// The boundary-proxy mechanism over a 4-cycle window carrying one
// delivery — roughly a boundary edge's duty cycle in the loaded fig7
// runs. The generic (cross-shard) variant pays the per-cycle edge
// machinery every cycle whether or not anything moved: dirty probe,
// publish flip, delivery-edge probe, ready-drain check, credit drain.
// The direct (same-shard) variant is the zero-copy specialization:
// idle cycles cost nothing because the edge is excluded from the
// per-cycle cross-shard passes entirely; only the delivery itself does
// work. Their ratio is the proxy tax the fast path reclaims, asserted
// machine-independently in CI via perf_compare.py --expect-ratio.
constexpr int kDrainWindow = 4; // cycles per delivery

struct NullCreditSink final : CreditSink
{
    std::uint64_t count = 0;
    void returnCredit(int, int, Cycle) override { count++; }
};

void
BM_BoundaryDrainGeneric(benchmark::State &state)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("bnd", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    NullCreditSink upstream;
    BoundaryChannel chan(&link, &upstream, 0);
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    for (auto _ : state) {
        for (int c = 0; c < kDrainWindow; c++) {
            // Parallel phase, producer side: one delivery per window.
            if (c == 0)
                chan.stageArrival(f);
            // Between phases, driving thread: swap pass probes every
            // cross-shard edge.
            if (chan.dirty())
                chan.swapBuffers();
            // Destination pre-pass: delivery wake probe, every cycle.
            benchmark::DoNotOptimize(chan.takeDeliveryEdge());
            // Parallel phase, consumer side: drain and stage credits.
            while (chan.hasReadyArrival()) {
                const Flit &got = chan.popReadyArrival();
                chan.returnCredit(0, got.vc, 1);
            }
            // Source pre-pass: collect published credits, every cycle.
            chan.drainCredits();
        }
        benchmark::DoNotOptimize(upstream.count);
    }
}
BENCHMARK(BM_BoundaryDrainGeneric);

void
BM_BoundaryDrainDirect(benchmark::State &state)
{
    BitrateLevelTable levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("bnd", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    NullCreditSink upstream;
    BoundaryChannel chan(&link, &upstream, 0);
    chan.setDirect();
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    for (auto _ : state) {
        // One delivery per window; the other cycles are free (the edge
        // is not in the cross-shard pre/post passes, and the consumer
        // router only ticks when the shuttle wakes it).
        chan.stageArrival(f); // publishes immediately
        while (chan.hasReadyArrival()) {
            const Flit &got = chan.popReadyArrival();
            chan.returnCredit(0, got.vc, 1); // forwards synchronously
        }
        benchmark::DoNotOptimize(upstream.count);
    }
}
BENCHMARK(BM_BoundaryDrainDirect);

// Shared setup for the accounting pair: a 16x16x8 fabric (~5k links,
// the scale where the scattered OpticalLink objects no longer fit in
// cache) with the thermal model on and enough simulated history that
// the link population mixes levels and in-flight transitions.
SystemConfig
accountingConfig()
{
    SystemConfig cfg;
    cfg.meshX = 16;
    cfg.meshY = 16;
    cfg.thermal.enabled = true;
    return cfg;
}

// The epoch accounting pass as the legacy direct walk ran it: every
// OpticalLink advanced through its pointer, TimeWeighted values and
// integrals read one cache-hostile hop at a time.
void
BM_PowerAccountingDirect(benchmark::State &state)
{
    SystemConfig cfg = accountingConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(3000);
    Network &net = sys.network();
    Cycle now = sys.now();
    for (auto _ : state) {
        benchmark::DoNotOptimize(makePowerReportDirect(net, now));
        benchmark::DoNotOptimize(
            net.totalPowerIntegralMwCyclesDirect(now));
    }
}
BENCHMARK(BM_PowerAccountingDirect)->Unit(benchmark::kMicrosecond);

// The same accounting pass through the LinkPowerLedger's flat columns
// (leakage + thermal enabled, so the ledger path is doing strictly
// more physics: leakage fold, VC energy attribution). CI gates the
// ratio against the direct walk at 1.3x via perf_compare.py
// --expect-ratio, which is machine-independent.
void
BM_PowerAccountingLedger(benchmark::State &state)
{
    SystemConfig cfg = accountingConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(3000);
    Network &net = sys.network();
    Cycle now = sys.now();
    for (auto _ : state) {
        benchmark::DoNotOptimize(makePowerReport(net, now));
        benchmark::DoNotOptimize(net.totalPowerIntegralMwCycles(now));
    }
}
BENCHMARK(BM_PowerAccountingLedger)->Unit(benchmark::kMicrosecond);

} // namespace

#ifndef OENET_BUILD_TYPE
#define OENET_BUILD_TYPE "unknown"
#endif

int
main(int argc, char **argv)
{
    // Stamp the simulator's own build type into the JSON context so
    // perf_compare.py can refuse baselines recorded from Debug builds
    // (the library_build_type field only describes libbenchmark).
    benchmark::AddCustomContext("oenet_build_type", OENET_BUILD_TYPE);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
