/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * the RNG, the arbiter, link accept/pop, router tick (idle and
 * loaded), and a full-system cycle at the paper's 64-rack scale.
 * These guard the simulator's own performance, which bounds how much
 * of the paper's design space the figure benches can sweep.
 *
 * Regression workflow: run with
 *     bench_sim_microbench --benchmark_format=json \
 *         --benchmark_out=BENCH_sim_microbench.json
 * and compare against the committed baseline at the repo root with
 *     python3 bench/perf_compare.py BENCH_sim_microbench.json NEW.json
 * The BM_SystemCycleIdle / BM_SystemCycleIdleNoElision pair measures
 * the idle-elision win within a single run (machine-independent);
 * perf_compare.py --expect-ratio asserts it stays >= 3x.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"

using namespace oenet;

namespace {

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngPoisson(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.poisson(2.0));
}
BENCHMARK(BM_RngPoisson);

void
BM_ArbiterPick(benchmark::State &state)
{
    RoundRobinArbiter arb(12);
    std::uint64_t req = 0b101001011011;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(req));
}
BENCHMARK(BM_ArbiterPick);

void
BM_LinkAcceptPop(benchmark::State &state)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("b", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    Cycle t = 0;
    for (auto _ : state) {
        if (link.canAccept(t))
            link.accept(t, f);
        while (link.hasArrival(t))
            benchmark::DoNotOptimize(link.popArrival(t));
        t++;
    }
}
BENCHMARK(BM_LinkAcceptPop);

void
BM_SystemCycleIdle(benchmark::State &state)
{
    SystemConfig cfg; // full 64-rack system, idle elision on (default)
    PoeSystem sys(cfg);
    sys.run(5000); // let the policy settle
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleIdle)->Unit(benchmark::kMicrosecond);

void
BM_SystemCycleIdleNoElision(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.idleElision = false; // tick all 64 routers + 512 nodes anyway
    PoeSystem sys(cfg);
    sys.run(5000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleIdleNoElision)->Unit(benchmark::kMicrosecond);

void
BM_SystemCycleLoaded(benchmark::State &state)
{
    SystemConfig cfg;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(5000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleLoaded)->Unit(benchmark::kMicrosecond);

void
BM_SmallSystemCycleLoaded(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 2;
    cfg.clusterSize = 2;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.3, 4, 3), cfg));
    sys.run(2000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SmallSystemCycleLoaded)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
