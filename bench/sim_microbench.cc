/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * the RNG, the arbiter, link accept/pop, router tick (idle and
 * loaded), and a full-system cycle at the paper's 64-rack scale.
 * These guard the simulator's own performance, which bounds how much
 * of the paper's design space the figure benches can sweep.
 *
 * Regression workflow: run with
 *     bench_sim_microbench --benchmark_format=json \
 *         --benchmark_out=BENCH_sim_microbench.json
 * and compare against the committed baseline at the repo root with
 *     python3 bench/perf_compare.py BENCH_sim_microbench.json NEW.json
 * The BM_SystemCycleIdle / BM_SystemCycleIdleNoElision pair measures
 * the idle-elision win within a single run (machine-independent);
 * perf_compare.py --expect-ratio asserts it stays >= 3x. The
 * BM_PowerAccountingDirect / BM_PowerAccountingLedger pair does the
 * same for the SoA power ledger (>= 1.3x with leakage + thermal on).
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "core/poe_system.hh"
#include "network/power_report.hh"

using namespace oenet;

namespace {

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngPoisson(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.poisson(2.0));
}
BENCHMARK(BM_RngPoisson);

void
BM_ArbiterPick(benchmark::State &state)
{
    RoundRobinArbiter arb(12);
    std::uint64_t req = 0b101001011011;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(req));
}
BENCHMARK(BM_ArbiterPick);

void
BM_LinkAcceptPop(benchmark::State &state)
{
    auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
    OpticalLink link("b", LinkKind::kInterRouter, levels,
                     OpticalLink::Params{});
    Flit f;
    f.flags = Flit::kHeadFlag | Flit::kTailFlag;
    Cycle t = 0;
    for (auto _ : state) {
        if (link.canAccept(t))
            link.accept(t, f);
        while (link.hasArrival(t))
            benchmark::DoNotOptimize(link.popArrival(t));
        t++;
    }
}
BENCHMARK(BM_LinkAcceptPop);

void
BM_SystemCycleIdle(benchmark::State &state)
{
    SystemConfig cfg; // full 64-rack system, idle elision on (default)
    PoeSystem sys(cfg);
    sys.run(5000); // let the policy settle
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleIdle)->Unit(benchmark::kMicrosecond);

void
BM_SystemCycleIdleNoElision(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.idleElision = false; // tick all 64 routers + 512 nodes anyway
    PoeSystem sys(cfg);
    sys.run(5000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleIdleNoElision)->Unit(benchmark::kMicrosecond);

void
BM_SystemCycleLoaded(benchmark::State &state)
{
    SystemConfig cfg;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(5000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SystemCycleLoaded)->Unit(benchmark::kMicrosecond);

void
BM_SmallSystemCycleLoaded(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 2;
    cfg.clusterSize = 2;
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(0.3, 4, 3), cfg));
    sys.run(2000);
    for (auto _ : state)
        sys.run(1);
}
BENCHMARK(BM_SmallSystemCycleLoaded)->Unit(benchmark::kMicrosecond);

// Shared setup for the accounting pair: a 16x16x8 fabric (~5k links,
// the scale where the scattered OpticalLink objects no longer fit in
// cache) with the thermal model on and enough simulated history that
// the link population mixes levels and in-flight transitions.
SystemConfig
accountingConfig()
{
    SystemConfig cfg;
    cfg.meshX = 16;
    cfg.meshY = 16;
    cfg.thermal.enabled = true;
    return cfg;
}

// The epoch accounting pass as the legacy direct walk ran it: every
// OpticalLink advanced through its pointer, TimeWeighted values and
// integrals read one cache-hostile hop at a time.
void
BM_PowerAccountingDirect(benchmark::State &state)
{
    SystemConfig cfg = accountingConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(3000);
    Network &net = sys.network();
    Cycle now = sys.now();
    for (auto _ : state) {
        benchmark::DoNotOptimize(makePowerReportDirect(net, now));
        benchmark::DoNotOptimize(
            net.totalPowerIntegralMwCyclesDirect(now));
    }
}
BENCHMARK(BM_PowerAccountingDirect)->Unit(benchmark::kMicrosecond);

// The same accounting pass through the LinkPowerLedger's flat columns
// (leakage + thermal enabled, so the ledger path is doing strictly
// more physics: leakage fold, VC energy attribution). CI gates the
// ratio against the direct walk at 1.3x via perf_compare.py
// --expect-ratio, which is machine-independent.
void
BM_PowerAccountingLedger(benchmark::State &state)
{
    SystemConfig cfg = accountingConfig();
    PoeSystem sys(cfg);
    sys.setTraffic(makeTraffic(TrafficSpec::uniform(2.0, 4, 3), cfg));
    sys.run(3000);
    Network &net = sys.network();
    Cycle now = sys.now();
    for (auto _ : state) {
        benchmark::DoNotOptimize(makePowerReport(net, now));
        benchmark::DoNotOptimize(net.totalPowerIntegralMwCycles(now));
    }
}
BENCHMARK(BM_PowerAccountingLedger)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
