/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, on the hot-spot
 * trace (all normalized against the non-power-aware baseline):
 *
 *  1. sliding-window depth N of Eq. 11 (1 = no history smoothing);
 *  2. congestion-adaptive thresholds (Table 1) vs. a single fixed set;
 *  3. voltage-before-frequency transition ordering vs. a pessimistic
 *     design that must disable the link for the whole T_v + T_br;
 *  4. the DVS policy vs. on/off links (Soteriou-Peh-style) vs. static
 *     minimum rate.
 *
 * Every case (and the shared baseline) is one sweep point; all carry
 * seedKey 0, i.e. the identical hot-spot traffic, so the ratios
 * isolate the design choice.
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 71);
    banner("Ablations", "policy design choices on the hot-spot trace");

    const Cycle kTotal = args.smoke ? 50000 : 250000;

    RunProtocol protocol;
    protocol.warmup = args.smoke ? 2000 : 10000;
    protocol.measure = kTotal;
    protocol.drainLimit = args.smoke ? 20000 : 60000;

    // The default schedule's 4.8 pkt/cycle plateau sits at the edge of
    // saturation where ratios explode and hide the ablation contrasts;
    // scale it to 70% so differences stay interpretable.
    std::vector<RatePhase> phases =
        defaultHotspotSchedule(kTotal + 20000);
    for (auto &ph : phases)
        ph.rate *= 0.7;
    TrafficSpec spec = TrafficSpec::hotspot(std::move(phases), 4);

    struct Case
    {
        const char *group;
        std::string name;
        SystemConfig config;
    };
    std::vector<Case> cases;

    {
        SystemConfig base;
        base.powerAware = false;
        cases.push_back({"baseline", "non_pa", base});
    }
    for (int n : {1, 2, 4, 8}) {
        SystemConfig cfg;
        cfg.policy.slidingWindows = n;
        cases.push_back({"sliding_depth", std::to_string(n), cfg});
    }
    {
        SystemConfig adaptive; // Table 1 defaults
        cases.push_back({"thresholds", "table1_adaptive", adaptive});
        SystemConfig fixed;
        fixed.policy.thLowCongested = fixed.policy.thLowUncongested;
        fixed.policy.thHighCongested = fixed.policy.thHighUncongested;
        cases.push_back({"thresholds", "fixed_0.4_0.6", fixed});
    }
    {
        SystemConfig ordered; // voltage ramps while link runs
        cases.push_back({"ordering", "voltage_first", ordered});
        SystemConfig pessimistic;
        // A design without the ordering trick: the link is dead for
        // the full voltage + frequency transition.
        pessimistic.voltTransitionCycles = 0;
        pessimistic.freqTransitionCycles = 120;
        cases.push_back({"ordering", "disable_120cyc", pessimistic});
    }
    {
        SystemConfig on; // default
        cases.push_back({"escalation", "escalation_on", on});
        SystemConfig off;
        off.senderBacklogEscalation = false;
        cases.push_back({"escalation", "escalation_off", off});
    }
    for (auto algo : {RoutingAlgo::kXY, RoutingAlgo::kYX,
                      RoutingAlgo::kWestFirst}) {
        SystemConfig cfg;
        cfg.routing = algo;
        cases.push_back({"routing", routingAlgoName(algo), cfg});
    }
    {
        SystemConfig dvs;
        cases.push_back({"policy_family", "history_dvs", dvs});
        SystemConfig onoff;
        onoff.policyMode = PolicyMode::kOnOff;
        cases.push_back({"policy_family", "on_off", onoff});
        SystemConfig static_min;
        static_min.policyMode = PolicyMode::kStatic;
        static_min.staticLevel = 0;
        cases.push_back({"policy_family", "static_min", static_min});
    }

    std::vector<SweepPoint> points;
    for (const Case &c : cases) {
        SweepPoint p;
        p.label = std::string(c.group) + "/" + c.name;
        p.config = c.config;
        p.spec = spec;
        p.protocol = protocol;
        p.seedKey = 0; // every case sees the identical traffic
        points.push_back(std::move(p));
    }
    // Trace the paper-default power-aware case (Table 1 thresholds).
    for (std::size_t i = 0; i < points.size(); i++) {
        if (points[i].label == "thresholds/table1_adaptive")
            markTracePoint(args, points, i);
    }

    applyKernelArgs(args, points);
    SweepRunner runner(runnerOptions(args));
    SweepReport report = runner.run(points);
    printReport(report);

    const RunMetrics &baseline = report.outcomes[0].metrics;
    auto emitGroup = [&](const char *group, const char *title,
                         const char *csv, const char *key_col) {
        Table t(title, csv,
                {key_col, "latency_x", "power_x", "plp_x",
                 "transitions"});
        for (std::size_t i = 0; i < cases.size(); i++) {
            if (std::strcmp(cases[i].group, group) != 0)
                continue;
            const RunMetrics &m = report.outcomes[i].metrics;
            NormalizedMetrics n = normalizeAgainst(m, baseline);
            t.row({cases[i].name, formatDouble(n.latencyRatio, 3),
                   formatDouble(n.powerRatio, 3),
                   formatDouble(n.plpRatio, 3),
                   formatDouble(static_cast<double>(m.transitions),
                                0)});
        }
        t.print();
    };

    emitGroup("sliding_depth",
              "Ablation 1: sliding-window depth N (Eq. 11)",
              "ablation_sliding_depth.csv", "N");
    emitGroup("thresholds",
              "Ablation 2: congestion-adaptive vs fixed thresholds",
              "ablation_congestion_thresholds.csv", "variant");
    emitGroup("ordering", "Ablation 3: transition ordering",
              "ablation_transition_ordering.csv", "variant");
    emitGroup("escalation",
              "Ablation 4: sender-backlog escalation (saturation "
              "stabilizer)",
              "ablation_backlog_escalation.csv", "variant");
    emitGroup("policy_family", "Ablation 5: policy family",
              "ablation_policy_family.csv", "policy");
    emitGroup("routing", "Ablation 6: routing algorithm",
              "ablation_routing.csv", "routing");

    writeSweepManifest("ablation_manifest.json", "ablation_policy",
                       args.seed, report.outcomes);
    std::printf("   (manifest: ablation_manifest.json)\n");
    return exitStatus(report);
}
