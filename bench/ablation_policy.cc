/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, on the hot-spot
 * trace (all normalized against the non-power-aware baseline):
 *
 *  1. sliding-window depth N of Eq. 11 (1 = no history smoothing);
 *  2. congestion-adaptive thresholds (Table 1) vs. a single fixed set;
 *  3. voltage-before-frequency transition ordering vs. a pessimistic
 *     design that must disable the link for the whole T_v + T_br;
 *  4. the DVS policy vs. on/off links (Soteriou-Peh-style) vs. static
 *     minimum rate.
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

namespace {

constexpr Cycle kTotal = 250000;

RunMetrics
runCase(const SystemConfig &cfg, const TrafficSpec &spec)
{
    RunProtocol protocol;
    protocol.warmup = 10000;
    protocol.measure = kTotal;
    protocol.drainLimit = 60000;
    return runExperiment(cfg, spec, protocol);
}

} // namespace

int
main()
{
    banner("Ablations", "policy design choices on the hot-spot trace");

    // The default schedule's 4.8 pkt/cycle plateau sits at the edge of
    // saturation where ratios explode and hide the ablation contrasts;
    // scale it to 70% so differences stay interpretable.
    std::vector<RatePhase> phases =
        defaultHotspotSchedule(kTotal + 20000);
    for (auto &ph : phases)
        ph.rate *= 0.7;
    TrafficSpec spec = TrafficSpec::hotspot(std::move(phases), 4, 71);

    SystemConfig base;
    base.powerAware = false;
    RunMetrics baseline = runCase(base, spec);

    auto report = [&](Table &t, const char *name,
                      const SystemConfig &cfg) {
        RunMetrics m = runCase(cfg, spec);
        NormalizedMetrics n = normalizeAgainst(m, baseline);
        t.row({name, formatDouble(n.latencyRatio, 3),
               formatDouble(n.powerRatio, 3),
               formatDouble(n.plpRatio, 3),
               formatDouble(static_cast<double>(m.transitions), 0)});
        std::printf("  %s done\n", name);
    };

    {
        Table t("Ablation 1: sliding-window depth N (Eq. 11)",
                "ablation_sliding_depth.csv",
                {"N", "latency_x", "power_x", "plp_x", "transitions"});
        for (int n : {1, 2, 4, 8}) {
            SystemConfig cfg;
            cfg.policy.slidingWindows = n;
            report(t, std::to_string(n).c_str(), cfg);
        }
        t.print();
    }

    {
        Table t("Ablation 2: congestion-adaptive vs fixed thresholds",
                "ablation_congestion_thresholds.csv",
                {"variant", "latency_x", "power_x", "plp_x",
                 "transitions"});
        SystemConfig adaptive; // Table 1 defaults
        report(t, "table1_adaptive", adaptive);
        SystemConfig fixed;
        fixed.policy.thLowCongested = fixed.policy.thLowUncongested;
        fixed.policy.thHighCongested = fixed.policy.thHighUncongested;
        report(t, "fixed_0.4_0.6", fixed);
        t.print();
    }

    {
        Table t("Ablation 3: transition ordering",
                "ablation_transition_ordering.csv",
                {"variant", "latency_x", "power_x", "plp_x",
                 "transitions"});
        SystemConfig ordered; // voltage ramps while link runs
        report(t, "voltage_first", ordered);
        SystemConfig pessimistic;
        // A design without the ordering trick: the link is dead for
        // the full voltage + frequency transition.
        pessimistic.voltTransitionCycles = 0;
        pessimistic.freqTransitionCycles = 120;
        report(t, "disable_120cyc", pessimistic);
        t.print();
    }

    {
        Table t("Ablation 4: sender-backlog escalation (saturation "
                "stabilizer)",
                "ablation_backlog_escalation.csv",
                {"variant", "latency_x", "power_x", "plp_x",
                 "transitions"});
        SystemConfig on; // default
        report(t, "escalation_on", on);
        SystemConfig off;
        off.senderBacklogEscalation = false;
        report(t, "escalation_off", off);
        t.print();
    }

    {
        Table t("Ablation 6: routing algorithm",
                "ablation_routing.csv",
                {"routing", "latency_x", "power_x", "plp_x",
                 "transitions"});
        for (auto algo : {RoutingAlgo::kXY, RoutingAlgo::kYX,
                          RoutingAlgo::kWestFirst}) {
            SystemConfig cfg;
            cfg.routing = algo;
            report(t, routingAlgoName(algo), cfg);
        }
        t.print();
    }

    {
        Table t("Ablation 5: policy family",
                "ablation_policy_family.csv",
                {"policy", "latency_x", "power_x", "plp_x",
                 "transitions"});
        SystemConfig dvs;
        report(t, "history_dvs", dvs);
        SystemConfig onoff;
        onoff.policyMode = PolicyMode::kOnOff;
        report(t, "on_off", onoff);
        SystemConfig static_min;
        static_min.policyMode = PolicyMode::kStatic;
        static_min.staticLevel = 0;
        report(t, "static_min", static_min);
        t.print();
    }
    return 0;
}
