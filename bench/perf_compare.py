#!/usr/bin/env python3
"""Tolerance checker for bench_sim_microbench JSON output.

Two modes, combinable in one invocation:

  Baseline compare (positional args):
      perf_compare.py BASELINE.json NEW.json [--tolerance 0.25]
  Every benchmark present in both files must not be slower than
  baseline * (1 + tolerance). Benchmarks missing from either side are
  reported but not fatal (new benchmarks appear, old ones retire).
  Wall-clock baselines are machine-specific, so CI uses a loose
  tolerance as a catastrophic-regression net; use a tight one locally
  against a baseline recorded on the same machine.

  Ratio assertion (works on a single file, machine-independent):
      perf_compare.py --expect-ratio SLOW_NAME FAST_NAME MIN NEW.json
  Asserts time(SLOW_NAME) / time(FAST_NAME) >= MIN. Used to pin the
  idle-elision win: BM_SystemCycleIdleNoElision over BM_SystemCycleIdle
  must stay >= 3x.

Either mode refuses JSON recorded from a non-Release simulator build
(the oenet_build_type context stamped by bench_sim_microbench); pass
--allow-debug to downgrade the refusal to a warning. A debug build of
the google-benchmark *library* (library_build_type) only warns.

Exit status: 0 all checks pass, 1 a check failed, 2 usage/parse error.

Regenerate the committed baseline (from a Release build):
    build/bench/bench_sim_microbench --benchmark_format=json \
        --benchmark_out=BENCH_sim_microbench.json
"""

import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def check_build_type(doc, path, allow_debug):
    """Reject (or warn about) timings from unoptimized builds.

    oenet_build_type is the simulator's own CMAKE_BUILD_TYPE, stamped
    by bench_sim_microbench's main; it is authoritative. The
    library_build_type field only describes how libbenchmark itself was
    compiled (distro packages are often 'debug'), so it merits a
    warning, not a refusal.
    """
    ctx = doc.get("context", {})
    own = ctx.get("oenet_build_type")
    if own is None:
        print(f"perf_compare: WARNING: {path} has no oenet_build_type "
              f"context (recorded before build-type stamping); cannot "
              f"verify it came from a Release build", file=sys.stderr)
    elif own.lower() != "release":
        msg = (f"{path} was recorded from a '{own}' build of the "
               f"simulator; perf numbers are only meaningful from "
               f"Release (-O2 -DNDEBUG)")
        if not allow_debug:
            sys.exit(f"perf_compare: {msg} (pass --allow-debug to "
                     f"override)")
        print(f"perf_compare: WARNING: {msg}", file=sys.stderr)
    if ctx.get("library_build_type", "").lower() == "debug":
        print(f"perf_compare: WARNING: {path} used a debug build of "
              f"the google-benchmark library; absolute times may be "
              f"inflated", file=sys.stderr)


def load(path, allow_debug=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")
    check_build_type(doc, path, allow_debug)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue  # use the raw runs; aggregates double-report
        unit = UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"perf_compare: unknown time unit in {path}: "
                     f"{b.get('time_unit')}")
        times[b["name"]] = b["real_time"] * unit
    if not times:
        sys.exit(f"perf_compare: no benchmarks in {path}")
    return times


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+",
                    help="BASELINE.json NEW.json, or just NEW.json "
                         "with --expect-ratio")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed slowdown fraction vs baseline "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--expect-ratio", nargs=3, action="append",
                    metavar=("SLOW", "FAST", "MIN"), default=[],
                    help="assert time(SLOW)/time(FAST) >= MIN in the "
                         "last file")
    ap.add_argument("--allow-debug", action="store_true",
                    help="downgrade the non-Release build refusal to a "
                         "warning (local experiments only)")
    args = ap.parse_args()

    failed = False
    target = None

    if len(args.files) == 2:
        base = load(args.files[0], args.allow_debug)
        new = load(args.files[1], args.allow_debug)
        target = new
        shared = sorted(set(base) & set(new))
        if not shared:
            sys.exit("perf_compare: no common benchmarks to compare")
        print(f"{'benchmark':<36} {'baseline':>10} {'new':>10} "
              f"{'ratio':>7}")
        for name in shared:
            ratio = new[name] / base[name]
            verdict = "ok"
            if ratio > 1.0 + args.tolerance:
                verdict = "REGRESSION"
                failed = True
            print(f"{name:<36} {fmt(base[name]):>10} "
                  f"{fmt(new[name]):>10} {ratio:>6.2f}x  {verdict}")
        for name in sorted(set(base) - set(new)):
            print(f"{name:<36} (missing from new run)")
        for name in sorted(set(new) - set(base)):
            print(f"{name:<36} (new; no baseline)")
    elif len(args.files) == 1:
        if not args.expect_ratio:
            ap.error("one file given but no --expect-ratio check")
    else:
        ap.error("expected BASELINE.json NEW.json or a single file "
                 "with --expect-ratio")

    if target is None:
        target = load(args.files[-1], args.allow_debug)
    for slow, fast, min_ratio in args.expect_ratio:
        try:
            want = float(min_ratio)
        except ValueError:
            ap.error(f"--expect-ratio MIN must be a number, "
                     f"got '{min_ratio}'")
        for name in (slow, fast):
            if name not in target:
                sys.exit(f"perf_compare: benchmark '{name}' not in "
                         f"{args.files[-1]}")
        ratio = target[slow] / target[fast]
        ok = ratio >= want
        print(f"ratio {slow} / {fast} = {ratio:.1f}x "
              f"(need >= {want}x): {'ok' if ok else 'FAILED'}")
        failed |= not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
