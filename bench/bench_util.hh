/**
 * @file
 * Shared plumbing for the figure-regeneration benches: aligned table
 * printing and CSV capture next to stdout, so every bench both shows
 * the paper-comparable series and leaves machine-readable data.
 */

#ifndef OENET_BENCH_BENCH_UTIL_HH
#define OENET_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/log.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "core/sweep_runner.hh"
#include "network/topology.hh"
#include "trace/trace_sinks.hh"

namespace oenet::bench {

/** Command line shared by every figure bench. */
struct BenchArgs
{
    int jobs = 0;            ///< --jobs N; 0 = hardware concurrency
    std::uint64_t seed = 1;  ///< --seed S; base seed for the sweep
    bool smoke = false;      ///< --smoke; tiny CI-sized run
    bool quiet = false;      ///< --quiet; suppress per-point progress
    std::string trace;       ///< --trace PATH; empty = no tracing
    TraceFormat traceFormat = TraceFormat::kJsonl; ///< --trace-format
    Cycle metricsInterval = 1000; ///< --metrics-interval N; must be > 0
    bool idleElision = true; ///< --idle-elision on|off (kernel scheduler)
    int shards = 1;          ///< --shards N; intra-run shard domains
    bool leakage = false;    ///< --leakage on|off; thermal/leakage model

    // Crash safety (see DESIGN.md "Crash-safe sweeps").
    std::string journal;     ///< --journal PATH; append-only checkpoint
    bool resume = false;     ///< --resume; replay the journal first
    bool isolate = false;    ///< --isolate; fork each point
    std::uint64_t timeoutMs = 0;  ///< --timeout-ms N; absolute budget
    double timeoutFactor = 0.0;   ///< --timeout-factor X; vs median
    int maxRetries = 2;      ///< --max-retries N; per failing point

    // Fabric overrides; unset flags keep each bench's own defaults
    // (the paper's 8x8x8 mesh) so unflagged runs stay byte-identical.
    bool topologySet = false; ///< --topology was given
    TopologyKind topology = TopologyKind::kMesh;
    int meshX = 0;       ///< --mesh-x N; 0 = bench default
    int meshY = 0;       ///< --mesh-y N; 0 = bench default
    int clusterSize = 0; ///< --cluster C; 0 = bench default
    int fatTreeArity = 0; ///< --arity K; 0 = bench default
};

/** Parse a decimal unsigned flag value, rejecting garbage, trailing
 *  junk, negatives, and out-of-range numbers with a one-line error
 *  naming the flag. */
inline std::uint64_t
parseFlagUint(const char *prog, const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    // strtoull silently wraps "-1"; reject signs up front.
    if (text[0] == '-' || text[0] == '+')
        fatal("%s: %s needs an unsigned number, got '%s'", prog, flag,
              text);
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("%s: %s needs a number, got '%s'", prog, flag, text);
    if (errno == ERANGE)
        fatal("%s: %s value '%s' out of range", prog, flag, text);
    return v;
}

/** Parse a decimal int flag value in [@p lo, @p hi], rejecting
 *  garbage and out-of-range numbers with a one-line error. */
inline int
parseFlagInt(const char *prog, const char *flag, const char *text,
             int lo, int hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("%s: %s needs a number, got '%s'", prog, flag, text);
    if (errno == ERANGE || v < lo || v > hi)
        fatal("%s: %s value '%s' out of range [%d, %d]", prog, flag,
              text, lo, hi);
    return static_cast<int>(v);
}

/** Parse a decimal floating-point flag value in [@p lo, @p hi]. */
inline double
parseFlagDouble(const char *prog, const char *flag, const char *text,
                double lo, double hi)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("%s: %s needs a number, got '%s'", prog, flag, text);
    if (errno == ERANGE || !(v >= lo && v <= hi))
        fatal("%s: %s value '%s' out of range [%g, %g]", prog, flag,
              text, lo, hi);
    return v;
}

/** Parse --jobs / --seed / --smoke / --quiet / --trace /
 *  --trace-format / --metrics-interval / --help. Exits on --help or an
 *  unknown flag. @p default_seed is the bench's historical seed, kept
 *  as the default so unflagged runs stay reproducible across
 *  sessions. */
inline BenchArgs
parseBenchArgs(int argc, char **argv, std::uint64_t default_seed)
{
    BenchArgs args;
    args.seed = default_seed;
    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s: %s needs a value", argv[0], a);
            return argv[++i];
        };
        if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) {
            args.jobs = parseFlagInt(argv[0], a, value(), 0, 4096);
        } else if (std::strcmp(a, "--seed") == 0) {
            args.seed = parseFlagUint(argv[0], a, value());
        } else if (std::strcmp(a, "--smoke") == 0) {
            args.smoke = true;
        } else if (std::strcmp(a, "--quiet") == 0) {
            args.quiet = true;
        } else if (std::strcmp(a, "--trace") == 0) {
            args.trace = value();
        } else if (std::strcmp(a, "--trace-format") == 0) {
            args.traceFormat = parseTraceFormat(value());
        } else if (std::strcmp(a, "--metrics-interval") == 0) {
            args.metricsInterval =
                parseFlagUint(argv[0], a, value());
        } else if (std::strcmp(a, "--topology") == 0) {
            args.topology = parseTopologyKind(value());
            args.topologySet = true;
        } else if (std::strcmp(a, "--mesh-x") == 0) {
            args.meshX = parseFlagInt(argv[0], a, value(), 1, 1024);
        } else if (std::strcmp(a, "--mesh-y") == 0) {
            args.meshY = parseFlagInt(argv[0], a, value(), 1, 1024);
        } else if (std::strcmp(a, "--cluster") == 0) {
            args.clusterSize =
                parseFlagInt(argv[0], a, value(), 1, 1024);
        } else if (std::strcmp(a, "--arity") == 0) {
            args.fatTreeArity =
                parseFlagInt(argv[0], a, value(), 2, 64);
        } else if (std::strcmp(a, "--shards") == 0) {
            args.shards = parseFlagInt(argv[0], a, value(), 1, 256);
        } else if (std::strcmp(a, "--leakage") == 0) {
            const char *v = value();
            if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0) {
                args.leakage = true;
            } else if (std::strcmp(v, "off") == 0 ||
                       std::strcmp(v, "0") == 0) {
                args.leakage = false;
            } else {
                fatal("%s: %s needs on|off, got '%s'", argv[0], a, v);
            }
        } else if (std::strcmp(a, "--journal") == 0) {
            args.journal = value();
        } else if (std::strcmp(a, "--resume") == 0) {
            args.resume = true;
        } else if (std::strcmp(a, "--isolate") == 0) {
            args.isolate = true;
        } else if (std::strcmp(a, "--timeout-ms") == 0) {
            args.timeoutMs = parseFlagUint(argv[0], a, value());
        } else if (std::strcmp(a, "--timeout-factor") == 0) {
            args.timeoutFactor =
                parseFlagDouble(argv[0], a, value(), 1.0, 1e6);
        } else if (std::strcmp(a, "--max-retries") == 0) {
            args.maxRetries = parseFlagInt(argv[0], a, value(), 0, 100);
        } else if (std::strcmp(a, "--idle-elision") == 0) {
            const char *v = value();
            if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0) {
                args.idleElision = true;
            } else if (std::strcmp(v, "off") == 0 ||
                       std::strcmp(v, "0") == 0) {
                args.idleElision = false;
            } else {
                fatal("%s: %s needs on|off, got '%s'", argv[0], a, v);
            }
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            std::printf(
                "usage: %s [--jobs N] [--seed S] [--smoke] [--quiet]\n"
                "          [--trace PATH [--trace-format jsonl|chrome]\n"
                "           [--metrics-interval N]]\n"
                "  --jobs N   worker threads (default: hardware "
                "concurrency, %d here;\n"
                "             1 = serial; results identical at any N)\n"
                "  --seed S   base seed for derived per-point streams\n"
                "  --smoke    tiny run for CI (fewer points, short "
                "protocol)\n"
                "  --quiet    no per-point progress lines\n"
                "  --trace PATH\n"
                "             write an event trace of the bench's "
                "designated point\n"
                "  --trace-format jsonl|chrome\n"
                "             trace flavor (default jsonl; chrome loads "
                "in ui.perfetto.dev)\n"
                "  --metrics-interval N\n"
                "             power-snapshot period in cycles for the "
                "traced run\n"
                "             (default 1000; must be > 0 — omit "
                "--trace to disable)\n"
                "  --leakage on|off\n"
                "             sub-threshold/gate leakage with per-link "
                "thermal feedback\n"
                "             (default off; off keeps outputs "
                "byte-identical to older builds)\n"
                "  --shards N shard one run across N threads "
                "(default 1;\n"
                "             outputs byte-identical at any N)\n"
                "  --idle-elision on|off\n"
                "             park quiescent components instead of "
                "ticking them\n"
                "             (default on; outputs are byte-identical "
                "either way)\n"
                "  --journal PATH\n"
                "             append a CRC-guarded checkpoint record "
                "per finished point\n"
                "  --resume   replay PATH's valid records and run only "
                "the rest\n"
                "             (manifests come out byte-identical to an "
                "uninterrupted run)\n"
                "  --isolate  fork each point into its own process "
                "(a crash or hang\n"
                "             loses one point, not the sweep)\n"
                "  --timeout-ms N\n"
                "             kill an isolated point after N ms and "
                "retry it\n"
                "  --timeout-factor X\n"
                "             like --timeout-ms, but X times the "
                "running median point time\n"
                "  --max-retries N\n"
                "             attempts beyond the first before a point "
                "is recorded failed\n"
                "             (default 2; backoff doubles between "
                "attempts)\n"
                "  --topology mesh|torus|cmesh|fattree\n"
                "             fabric (default: the bench's own, the "
                "paper's 8x8x8 mesh)\n"
                "  --mesh-x N / --mesh-y N\n"
                "             router grid dimensions (mesh family)\n"
                "  --cluster C\n"
                "             nodes per router; cmesh needs a perfect "
                "square\n"
                "  --arity K  fat-tree switch radix (even; k^3/4 "
                "nodes)\n",
                argv[0], hardwareJobs());
            std::exit(0);
        } else {
            fatal("%s: unknown flag '%s' (try --help)", argv[0], a);
        }
    }
    return args;
}

/** Runner options wired to the standard progress printer and, when
 *  --trace was given, a sink factory writing to the requested path. */
inline SweepRunner::Options
runnerOptions(const BenchArgs &args)
{
    SweepRunner::Options opts;
    opts.jobs = args.jobs;
    opts.baseSeed = args.seed;
    opts.journalPath = args.journal;
    opts.resume = args.resume;
    opts.isolate = args.isolate;
    opts.timeoutMs = args.timeoutMs;
    opts.timeoutFactor = args.timeoutFactor;
    opts.maxRetries = args.maxRetries;
    if (!args.quiet) {
        opts.progress = [](const SweepOutcome &o, std::size_t done,
                           std::size_t total) {
            std::printf("  [%zu/%zu] %s (%.1fs)\n", done, total,
                        o.label.c_str(), o.wallMs / 1000.0);
            std::fflush(stdout);
        };
    }
    if (!args.trace.empty()) {
        std::string path = args.trace;
        TraceFormat format = args.traceFormat;
        opts.traceFactory =
            [path, format](const std::string &) {
                return makeTraceSink(path, format);
            };
    }
    return opts;
}

/** Stamp kernel-level flags (--idle-elision) and fabric overrides
 *  (--topology / --mesh-x / --mesh-y / --cluster / --arity) onto every
 *  point's SystemConfig, then validate the result so a bad combination
 *  dies with SystemConfig's actionable message before any point runs.
 *  Call after assembling a points vector, before handing it to the
 *  runner. Works on SweepPoint and TimelinePoint alike. */
inline void
applyFabricOverrides(const BenchArgs &args, SystemConfig &config)
{
    if (args.topologySet)
        config.topology = args.topology;
    if (args.meshX > 0)
        config.meshX = args.meshX;
    if (args.meshY > 0)
        config.meshY = args.meshY;
    if (args.clusterSize > 0)
        config.clusterSize = args.clusterSize;
    if (args.fatTreeArity > 0)
        config.fatTreeArity = args.fatTreeArity;
}

template <typename Point>
inline void
applyKernelArgs(const BenchArgs &args, std::vector<Point> &points)
{
    for (auto &p : points) {
        p.config.idleElision = args.idleElision;
        p.config.shards = args.shards;
        p.config.thermal.enabled = args.leakage;
        // Routed through the config so --metrics-interval 0 dies in
        // validate() with an actionable message instead of silently
        // dropping the snapshot series.
        p.config.metricsIntervalCycles = args.metricsInterval;
        applyFabricOverrides(args, p.config);
        p.config.validate();
    }
}

/** Mark the point at @p index for tracing when --trace was given.
 *  Each bench designates exactly one point — the sink factory writes
 *  every traced point to the single --trace path. Works on SweepPoint
 *  and TimelinePoint vectors alike. */
template <typename Point>
inline void
markTracePoint(const BenchArgs &args, std::vector<Point> &points,
               std::size_t index)
{
    if (args.trace.empty())
        return;
    if (index >= points.size())
        fatal("markTracePoint: index %zu out of range (%zu points)",
              index, points.size());
    points[index].trace = true;
    std::printf("tracing '%s' -> %s (%s, metrics every %llu cycles)\n",
                points[index].label.c_str(), args.trace.c_str(),
                traceFormatName(args.traceFormat),
                static_cast<unsigned long long>(args.metricsInterval));
}

/** One-line runner telemetry (threads, wall time, speedup), plus the
 *  per-status breakdown when points were resumed or failed. */
inline void
printReport(const SweepReport &report)
{
    std::printf("sweep: %zu points on %d thread%s in %.1fs "
                "(points sum %.1fs, speedup %.2fx)\n",
                report.outcomes.size(), report.jobs,
                report.jobs == 1 ? "" : "s", report.wallMs / 1000.0,
                report.pointWallMs.sum() / 1000.0, report.speedup());
    if (report.resumedPoints > 0) {
        std::printf("sweep: %zu point(s) replayed from the journal\n",
                    report.resumedPoints);
    }
    std::size_t failed = report.failedPoints();
    if (failed > 0) {
        std::printf("sweep: %zu ok, %zu FAILED\n",
                    report.outcomes.size() - failed, failed);
        for (const auto &o : report.outcomes) {
            if (!o.ok()) {
                std::printf("  FAILED [%zu] %s after %d attempt(s): "
                            "%s\n",
                            o.index, o.label.c_str(), o.attempts,
                            o.error.c_str());
            }
        }
    }
}

/** Process exit code for a finished sweep: 0 when every point is ok,
 *  1 when any point exhausted its retries (that point's manifest row
 *  survives, marked by the status column — the sweep's other points
 *  are intact and the operator sees the failure in $?). */
inline int
exitStatus(const SweepReport &report)
{
    return report.allOk() ? 0 : 1;
}

/** Same for timeline sweeps, printing what failed (timeline benches
 *  have no SweepReport to carry the breakdown). */
inline int
exitStatus(const std::vector<TimelineOutcome> &outcomes)
{
    int failed = 0;
    for (const auto &o : outcomes) {
        if (o.status != PointStatus::kOk) {
            failed++;
            std::printf("  FAILED [%zu] %s after %d attempt(s): %s\n",
                        o.index, o.label.c_str(), o.attempts,
                        o.error.c_str());
        }
    }
    return failed > 0 ? 1 : 0;
}

/** Column-aligned table that mirrors itself into a CSV file. */
class Table
{
  public:
    Table(std::string title, std::string csv_path,
          std::vector<std::string> columns)
        : title_(std::move(title)), csv_(csv_path),
          columns_(std::move(columns))
    {
        csv_.header(columns_);
    }

    void row(const std::vector<std::string> &cells)
    {
        rows_.push_back(cells);
        csv_.row(cells);
    }

    void rowNumeric(const std::vector<double> &cells, int precision = 4)
    {
        std::vector<std::string> s;
        s.reserve(cells.size());
        for (double v : cells)
            s.push_back(formatDouble(v, precision));
        row(s);
    }

    /** Print the accumulated table to stdout. */
    void print() const
    {
        std::printf("\n== %s ==\n", title_.c_str());
        printRow(columns_);
        for (const auto &r : rows_)
            printRow(r);
        std::printf("   (csv: %s)\n", csv_.path().c_str());
    }

  private:
    void printRow(const std::vector<std::string> &cells) const
    {
        for (const auto &c : cells)
            std::printf("%14s", c.c_str());
        std::printf("\n");
    }

    std::string title_;
    CsvWriter csv_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Banner naming the paper artifact a bench regenerates. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("==========================================================\n");
    std::printf("oenet bench: %s\n%s\n", artifact, description);
    std::printf("==========================================================\n");
}

} // namespace oenet::bench

#endif // OENET_BENCH_BENCH_UTIL_HH
