/**
 * @file
 * Shared plumbing for the figure-regeneration benches: aligned table
 * printing and CSV capture next to stdout, so every bench both shows
 * the paper-comparable series and leaves machine-readable data.
 */

#ifndef OENET_BENCH_BENCH_UTIL_HH
#define OENET_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"

namespace oenet::bench {

/** Column-aligned table that mirrors itself into a CSV file. */
class Table
{
  public:
    Table(std::string title, std::string csv_path,
          std::vector<std::string> columns)
        : title_(std::move(title)), csv_(csv_path),
          columns_(std::move(columns))
    {
        csv_.header(columns_);
    }

    void row(const std::vector<std::string> &cells)
    {
        rows_.push_back(cells);
        csv_.row(cells);
    }

    void rowNumeric(const std::vector<double> &cells, int precision = 4)
    {
        std::vector<std::string> s;
        s.reserve(cells.size());
        for (double v : cells)
            s.push_back(formatDouble(v, precision));
        row(s);
    }

    /** Print the accumulated table to stdout. */
    void print() const
    {
        std::printf("\n== %s ==\n", title_.c_str());
        printRow(columns_);
        for (const auto &r : rows_)
            printRow(r);
        std::printf("   (csv: %s)\n", csv_.path().c_str());
    }

  private:
    void printRow(const std::vector<std::string> &cells) const
    {
        for (const auto &c : cells)
            std::printf("%14s", c.c_str());
        std::printf("\n");
    }

    std::string title_;
    CsvWriter csv_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Banner naming the paper artifact a bench regenerates. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("==========================================================\n");
    std::printf("oenet bench: %s\n%s\n", artifact, description);
    std::printf("==========================================================\n");
}

} // namespace oenet::bench

#endif // OENET_BENCH_BENCH_UTIL_HH
