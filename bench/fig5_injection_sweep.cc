/**
 * @file
 * Regenerates Fig. 5(g)(h): latency and normalized power versus the
 * injection rate under uniform random traffic.
 *
 *  (g) average latency for: non-power-aware, power-aware 5-10 Gb/s,
 *      power-aware 3.3-10 Gb/s, and links statically set to 3.3 Gb/s.
 *      Expected: 5-10 Gb/s saturates with the baseline; 3.3-10 Gb/s
 *      saturates earlier (~3 pkt/cycle); static 3.3 earlier still
 *      (< 2 pkt/cycle).
 *  (h) power relative to non-power-aware for VCSEL and modulator
 *      schemes over both bit-rate ranges. Expected: savings largest at
 *      the light and saturated ends; > 90% attainable with the
 *      3.3-10 Gb/s range; VCSEL slightly ahead of modulator.
 *
 * All (rate, config) points run through SweepRunner; every config at
 * one rate shares a seedKey, i.e. sees the same traffic stream, so the
 * curves differ only by configuration. --smoke runs 2 rates with a
 * short protocol (the CI determinism check).
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

namespace {

SystemConfig
variant(LinkScheme scheme, double br_min, bool power_aware,
        int static_level = kInvalid)
{
    SystemConfig c;
    c.scheme = scheme;
    c.brMinGbps = br_min;
    c.powerAware = power_aware || static_level != kInvalid;
    if (static_level != kInvalid) {
        c.policyMode = PolicyMode::kStatic;
        c.staticLevel = static_level;
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 31);
    banner("Fig. 5(g)(h)",
           "latency and power vs. injection rate (uniform random)");

    // Post link-serialization-fix the fabric saturates near 6
    // pkt/cycle, so the axis extends past the paper's ~5.5 to keep the
    // saturation knees of Fig. 5(g) on the plot.
    const std::vector<double> rates =
        args.smoke ? std::vector<double>{1.0, 3.0}
                   : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5, 3.0,
                                         3.5, 4.0, 4.5, 5.0, 5.5, 6.0,
                                         6.5};

    RunProtocol protocol;
    protocol.warmup = args.smoke ? 2000 : 10000;
    protocol.measure = args.smoke ? 4000 : 20000;
    protocol.drainLimit = args.smoke ? 4000 : 20000;

    struct Cfg
    {
        const char *name;
        SystemConfig config;
    };
    // First four feed the latency/throughput tables, last four the
    // power table.
    const std::vector<Cfg> cfgs = {
        {"non_pa", variant(LinkScheme::kModulator, 5.0, false)},
        {"pa_5to10", variant(LinkScheme::kModulator, 5.0, true)},
        {"pa_3.3to10", variant(LinkScheme::kModulator, 3.3, true)},
        {"static_3.3", variant(LinkScheme::kModulator, 3.3, false, 0)},
        {"mod_5to10", variant(LinkScheme::kModulator, 5.0, true)},
        {"mod_3.3to10", variant(LinkScheme::kModulator, 3.3, true)},
        {"vcsel_5to10", variant(LinkScheme::kVcsel, 5.0, true)},
        {"vcsel_3.3to10", variant(LinkScheme::kVcsel, 3.3, true)},
    };

    std::vector<SweepPoint> points;
    for (std::size_t ri = 0; ri < rates.size(); ri++) {
        for (const Cfg &c : cfgs) {
            SweepPoint p;
            p.label = "rate=" + formatDouble(rates[ri], 1) + "/" + c.name;
            p.params = {{"rate", rates[ri]}};
            p.config = c.config;
            p.spec = TrafficSpec::uniform(rates[ri], 4);
            p.protocol = protocol;
            p.seedKey = ri; // all configs at a rate share the stream
            points.push_back(std::move(p));
        }
    }

    if (!args.trace.empty()) {
        // The stock Fig. 5 grid runs fixed-optical links, whose traces
        // carry no laser events; the traced run therefore uses the
        // 3.3-10 Gb/s power-aware config with tri-level optical power
        // (and the laser plant compressed to the run length, as Fig. 6
        // does) so one trace shows link transitions, DVS decisions,
        // and laser VOA traffic together. Appended after the grid so
        // the table index math below is untouched.
        std::size_t ri_mid = 0;
        for (std::size_t ri = 0; ri < rates.size(); ri++) {
            if (rates[ri] == 3.0)
                ri_mid = ri;
        }
        SweepPoint p;
        p.label = "trace/pa_3.3to10_tri";
        p.params = {{"rate", 3.0}};
        p.config = variant(LinkScheme::kModulator, 3.3, true);
        p.config.opticalMode = OpticalMode::kTriLevel;
        p.config.laser.responseCycles = args.smoke ? 500 : 2500;
        p.config.laser.decisionEpochCycles = args.smoke ? 1000 : 5000;
        p.spec = TrafficSpec::uniform(3.0, 4);
        p.protocol = protocol;
        p.seedKey = ri_mid; // rate-3.0 traffic stream
        points.push_back(std::move(p));
        markTracePoint(args, points, points.size() - 1);
    }

    applyKernelArgs(args, points);
    SweepRunner runner(runnerOptions(args));
    SweepReport report = runner.run(points);
    printReport(report);

    Table lat("Fig 5(g): avg latency (cycles) vs injection rate",
              "fig5g_latency_vs_rate.csv",
              {"rate", "non_pa", "pa_5to10", "pa_3.3to10",
               "static_3.3"});
    Table pwr("Fig 5(h): normalized power vs injection rate",
              "fig5h_power_vs_rate.csv",
              {"rate", "mod_5to10", "mod_3.3to10", "vcsel_5to10",
               "vcsel_3.3to10"});
    Table thr("Fig 5(g) companion: delivered throughput (flits/cycle)",
              "fig5g_throughput_vs_rate.csv",
              {"rate", "non_pa", "pa_5to10", "pa_3.3to10",
               "static_3.3"});

    for (std::size_t ri = 0; ri < rates.size(); ri++) {
        auto at = [&](std::size_t ci) -> const RunMetrics & {
            return report.outcomes[ri * cfgs.size() + ci].metrics;
        };
        std::vector<double> lrow{rates[ri]}, trow{rates[ri]};
        for (std::size_t ci = 0; ci < 4; ci++) {
            lrow.push_back(at(ci).avgLatency);
            trow.push_back(at(ci).throughputFlitsPerCycle);
        }
        lat.rowNumeric(lrow, 1);
        thr.rowNumeric(trow, 3);

        std::vector<double> prow{rates[ri]};
        for (std::size_t ci = 4; ci < 8; ci++)
            prow.push_back(at(ci).normalizedPower);
        pwr.rowNumeric(prow);
    }
    lat.print();
    thr.print();
    pwr.print();

    writeSweepManifest("fig5gh_manifest.json", "fig5_injection_sweep",
                       args.seed, report.outcomes);
    writeSweepManifestCsv("fig5gh_manifest.csv", report.outcomes);
    std::printf("   (manifest: fig5gh_manifest.json / .csv)\n");

    std::printf("\npaper shape: pa_5to10 tracks non_pa saturation; "
                "pa_3.3to10 ~3 pkt/cyc; static_3.3 < 2 pkt/cyc; VCSEL "
                "slightly below modulator in power.\n");
    return exitStatus(report);
}
