/**
 * @file
 * Regenerates Fig. 5(g)(h): latency and normalized power versus the
 * injection rate under uniform random traffic.
 *
 *  (g) average latency for: non-power-aware, power-aware 5-10 Gb/s,
 *      power-aware 3.3-10 Gb/s, and links statically set to 3.3 Gb/s.
 *      Expected: 5-10 Gb/s saturates with the baseline; 3.3-10 Gb/s
 *      saturates earlier (~3 pkt/cycle); static 3.3 earlier still
 *      (< 2 pkt/cycle).
 *  (h) power relative to non-power-aware for VCSEL and modulator
 *      schemes over both bit-rate ranges. Expected: savings largest at
 *      the light and saturated ends; > 90% attainable with the
 *      3.3-10 Gb/s range; VCSEL slightly ahead of modulator.
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

namespace {

SystemConfig
variant(LinkScheme scheme, double br_min, bool power_aware,
        int static_level = kInvalid)
{
    SystemConfig c;
    c.scheme = scheme;
    c.brMinGbps = br_min;
    c.powerAware = power_aware || static_level != kInvalid;
    if (static_level != kInvalid) {
        c.policyMode = PolicyMode::kStatic;
        c.staticLevel = static_level;
    }
    return c;
}

} // namespace

int
main()
{
    banner("Fig. 5(g)(h)",
           "latency and power vs. injection rate (uniform random)");

    const std::vector<double> rates = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0,
                                       3.5, 4.0, 4.5, 5.0};

    RunProtocol protocol;
    protocol.warmup = 10000;
    protocol.measure = 20000;
    protocol.drainLimit = 20000;

    struct Cfg
    {
        const char *name;
        SystemConfig config;
    };
    std::vector<Cfg> latency_cfgs = {
        {"non_pa", variant(LinkScheme::kModulator, 5.0, false)},
        {"pa_5to10", variant(LinkScheme::kModulator, 5.0, true)},
        {"pa_3.3to10", variant(LinkScheme::kModulator, 3.3, true)},
        {"static_3.3", variant(LinkScheme::kModulator, 3.3, false, 0)},
    };
    std::vector<Cfg> power_cfgs = {
        {"mod_5to10", variant(LinkScheme::kModulator, 5.0, true)},
        {"mod_3.3to10", variant(LinkScheme::kModulator, 3.3, true)},
        {"vcsel_5to10", variant(LinkScheme::kVcsel, 5.0, true)},
        {"vcsel_3.3to10", variant(LinkScheme::kVcsel, 3.3, true)},
    };

    Table lat("Fig 5(g): avg latency (cycles) vs injection rate",
              "fig5g_latency_vs_rate.csv",
              {"rate", "non_pa", "pa_5to10", "pa_3.3to10",
               "static_3.3"});
    Table pwr("Fig 5(h): normalized power vs injection rate",
              "fig5h_power_vs_rate.csv",
              {"rate", "mod_5to10", "mod_3.3to10", "vcsel_5to10",
               "vcsel_3.3to10"});
    Table thr("Fig 5(g) companion: delivered throughput (flits/cycle)",
              "fig5g_throughput_vs_rate.csv",
              {"rate", "non_pa", "pa_5to10", "pa_3.3to10",
               "static_3.3"});

    for (double rate : rates) {
        TrafficSpec spec = TrafficSpec::uniform(rate, 4, 31);
        std::vector<double> lrow{rate}, trow{rate};
        for (const auto &c : latency_cfgs) {
            RunMetrics m = runExperiment(c.config, spec, protocol);
            lrow.push_back(m.avgLatency);
            trow.push_back(m.throughputFlitsPerCycle);
        }
        lat.rowNumeric(lrow, 1);
        thr.rowNumeric(trow, 3);

        std::vector<double> prow{rate};
        for (const auto &c : power_cfgs) {
            RunMetrics m = runExperiment(c.config, spec, protocol);
            prow.push_back(m.normalizedPower);
        }
        pwr.rowNumeric(prow);
        std::printf("  rate %.1f done\n", rate);
    }
    lat.print();
    thr.print();
    pwr.print();
    std::printf("\npaper shape: pa_5to10 tracks non_pa saturation; "
                "pa_3.3to10 ~3 pkt/cyc; static_3.3 < 2 pkt/cyc; VCSEL "
                "slightly below modulator in power.\n");
    return 0;
}
