/**
 * @file
 * Regenerates Fig. 5(a)(b)(c): normalized average latency, normalized
 * power, and power-latency product of the power-aware network versus
 * the policy sampling window size T_w, under uniform random traffic at
 * light / medium / heavy injection rates (1.25, 3.3, 5 packets/cycle),
 * modulator-based links.
 *
 * Expected shape (paper): latency penalty worst at the shortest window
 * (frequent transitions keep disabling links) and creeping up again at
 * very long windows under load (policy too slow); shorter windows burn
 * more power except at light load where the whole fabric just pins at
 * the bottom rate; T_w around 1000 cycles is the sweet spot.
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

int
main()
{
    banner("Fig. 5(a)(b)(c)",
           "latency / power / power-latency product vs. policy window "
           "size T_w (uniform random, modulator links)");

    const std::vector<Cycle> windows = {100, 300, 1000, 3000, 10000};
    const std::vector<double> rates = {1.25, 3.3, 5.0};

    RunProtocol protocol;
    protocol.warmup = 15000;
    protocol.measure = 30000;
    protocol.drainLimit = 30000;

    // One baseline (non-power-aware) run per rate.
    std::vector<RunMetrics> baselines;
    for (double rate : rates) {
        SystemConfig base;
        base.powerAware = false;
        baselines.push_back(runExperiment(
            base, TrafficSpec::uniform(rate, 4, 17), protocol));
    }

    Table lat("Fig 5(a): normalized latency vs T_w",
              "fig5a_latency_vs_window.csv",
              {"window", "rate1.25", "rate3.3", "rate5.0"});
    Table pwr("Fig 5(b): normalized power vs T_w",
              "fig5b_power_vs_window.csv",
              {"window", "rate1.25", "rate3.3", "rate5.0"});
    Table plp("Fig 5(c): normalized power-latency product vs T_w",
              "fig5c_plp_vs_window.csv",
              {"window", "rate1.25", "rate3.3", "rate5.0"});

    for (Cycle w : windows) {
        std::vector<double> lrow{static_cast<double>(w)};
        std::vector<double> prow{static_cast<double>(w)};
        std::vector<double> plprow{static_cast<double>(w)};
        for (std::size_t i = 0; i < rates.size(); i++) {
            SystemConfig cfg;
            cfg.windowCycles = w;
            RunMetrics m = runExperiment(
                cfg, TrafficSpec::uniform(rates[i], 4, 17), protocol);
            NormalizedMetrics n = normalizeAgainst(m, baselines[i]);
            lrow.push_back(n.latencyRatio);
            prow.push_back(n.powerRatio);
            plprow.push_back(n.plpRatio);
        }
        lat.rowNumeric(lrow);
        pwr.rowNumeric(prow);
        plp.rowNumeric(plprow);
    }
    lat.print();
    pwr.print();
    plp.print();
    std::printf("\npaper shape: worst latency at T_w=100; higher power "
                "for short windows except at 1.25 pkt/cyc; T_w~1000 "
                "balances both.\n");
    return 0;
}
