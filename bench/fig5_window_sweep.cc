/**
 * @file
 * Regenerates Fig. 5(a)(b)(c): normalized average latency, normalized
 * power, and power-latency product of the power-aware network versus
 * the policy sampling window size T_w, under uniform random traffic at
 * light / medium / heavy injection rates (1.25, 3.3, 5 packets/cycle),
 * modulator-based links.
 *
 * Expected shape (paper): latency penalty worst at the shortest window
 * (frequent transitions keep disabling links) and creeping up again at
 * very long windows under load (policy too slow); shorter windows burn
 * more power except at light load where the whole fabric just pins at
 * the bottom rate; T_w around 1000 cycles is the sweet spot.
 *
 * One sweep over {baseline, windows} x rates; seedKey = rate index so
 * each window variant is normalized against a baseline that saw the
 * identical traffic.
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 17);
    banner("Fig. 5(a)(b)(c)",
           "latency / power / power-latency product vs. policy window "
           "size T_w (uniform random, modulator links)");

    const std::vector<Cycle> windows =
        args.smoke ? std::vector<Cycle>{300, 3000}
                   : std::vector<Cycle>{100, 300, 1000, 3000, 10000};
    const std::vector<double> rates = {1.25, 3.3, 5.0};

    RunProtocol protocol;
    protocol.warmup = args.smoke ? 2000 : 15000;
    protocol.measure = args.smoke ? 5000 : 30000;
    protocol.drainLimit = args.smoke ? 5000 : 30000;

    // Point layout: one baseline per rate, then windows x rates.
    std::vector<SweepPoint> points;
    for (std::size_t i = 0; i < rates.size(); i++) {
        SweepPoint p;
        p.label = "baseline/rate=" + formatDouble(rates[i], 2);
        p.params = {{"rate", rates[i]}};
        p.config.powerAware = false;
        p.spec = TrafficSpec::uniform(rates[i], 4);
        p.protocol = protocol;
        p.seedKey = i;
        points.push_back(std::move(p));
    }
    for (Cycle w : windows) {
        for (std::size_t i = 0; i < rates.size(); i++) {
            SweepPoint p;
            p.label = "window=" + std::to_string(w) +
                      "/rate=" + formatDouble(rates[i], 2);
            p.params = {{"window", static_cast<double>(w)},
                        {"rate", rates[i]}};
            p.config.windowCycles = w;
            p.spec = TrafficSpec::uniform(rates[i], 4);
            p.protocol = protocol;
            p.seedKey = i;
            points.push_back(std::move(p));
        }
    }
    // Trace the first power-aware point at the middle rate (the
    // baselines ahead of it never change level).
    applyKernelArgs(args, points);
    markTracePoint(args, points, rates.size() + 1);

    SweepRunner runner(runnerOptions(args));
    SweepReport report = runner.run(points);
    printReport(report);

    Table lat("Fig 5(a): normalized latency vs T_w",
              "fig5a_latency_vs_window.csv",
              {"window", "rate1.25", "rate3.3", "rate5.0"});
    Table pwr("Fig 5(b): normalized power vs T_w",
              "fig5b_power_vs_window.csv",
              {"window", "rate1.25", "rate3.3", "rate5.0"});
    Table plp("Fig 5(c): normalized power-latency product vs T_w",
              "fig5c_plp_vs_window.csv",
              {"window", "rate1.25", "rate3.3", "rate5.0"});

    for (std::size_t wi = 0; wi < windows.size(); wi++) {
        std::vector<double> lrow{static_cast<double>(windows[wi])};
        std::vector<double> prow = lrow, plprow = lrow;
        for (std::size_t i = 0; i < rates.size(); i++) {
            const RunMetrics &baseline = report.outcomes[i].metrics;
            const RunMetrics &m =
                report.outcomes[rates.size() * (1 + wi) + i].metrics;
            NormalizedMetrics n = normalizeAgainst(m, baseline);
            lrow.push_back(n.latencyRatio);
            prow.push_back(n.powerRatio);
            plprow.push_back(n.plpRatio);
        }
        lat.rowNumeric(lrow);
        pwr.rowNumeric(prow);
        plp.rowNumeric(plprow);
    }
    lat.print();
    pwr.print();
    plp.print();

    writeSweepManifest("fig5abc_manifest.json", "fig5_window_sweep",
                       args.seed, report.outcomes);
    writeSweepManifestCsv("fig5abc_manifest.csv", report.outcomes);
    std::printf("   (manifest: fig5abc_manifest.json / .csv)\n");

    std::printf("\npaper shape: worst latency at T_w=100; higher power "
                "for short windows except at 1.25 pkt/cyc; T_w~1000 "
                "balances both.\n");
    return exitStatus(report);
}
