/**
 * @file
 * Regenerates Fig. 6 under the time-varying hot-spot trace:
 *
 *  (a) the injection-rate schedule itself;
 *  (b) average latency with and without the transition delays — the
 *      voltage-transition penalty should be ~free (voltage ramps while
 *      the link runs), and T_br = 20 cycles should barely matter at
 *      T_w = 1000;
 *  (c) latency with a single vs. three optical power levels on
 *      modulator links vs. the non-power-aware network — band
 *      crossings cost a 100 us optical wait;
 *  (d) normalized power of VCSEL- vs. modulator-based power-aware
 *      systems.
 *
 * The paper's trace spans ~1.5M cycles; we compress the same plateau
 * pattern into 300k cycles (documented in EXPERIMENTS.md).
 *
 * The seven configurations run as one timeline sweep; they all carry
 * seedKey 0, i.e. the identical traffic stream, so the curves differ
 * only by configuration.
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 41);
    banner("Fig. 6", "time-varying hot-spot trace: transition-delay "
                     "ablation, optical levels, scheme comparison");

    const Cycle kTotal = args.smoke ? 60000 : 300000;
    const Cycle kBin = args.smoke ? 5000 : 10000;

    TrafficSpec spec =
        TrafficSpec::hotspot(defaultHotspotSchedule(kTotal), 4);

    // (a) the schedule.
    {
        Table t("Fig 6(a): offered injection rate over time",
                "fig6a_injection_schedule.csv",
                {"cycle", "packets_per_cycle"});
        for (const auto &ph : defaultHotspotSchedule(kTotal))
            t.rowNumeric({static_cast<double>(ph.start), ph.rate});
        t.print();
    }

    SystemConfig base;
    base.powerAware = false;
    SystemConfig mod; // T_v=100, T_br=20 (defaults)
    SystemConfig no_tv = mod;
    no_tv.voltTransitionCycles = 0;
    SystemConfig no_tbr = mod;
    no_tbr.freqTransitionCycles = 0;
    SystemConfig no_delays = mod;
    no_delays.voltTransitionCycles = 0;
    no_delays.freqTransitionCycles = 0;
    SystemConfig tri = mod;
    tri.opticalMode = OpticalMode::kTriLevel;
    // The paper's trace spans ~1.5M cycles; ours is compressed 5x, so
    // the optical plant's 100 us response / 200 us decision epoch are
    // compressed by the same factor to preserve the ratio of optical
    // to traffic timescales that Fig. 6(c) illustrates.
    tri.laser.responseCycles = microsToCycles(100.0) / 5;
    tri.laser.decisionEpochCycles = microsToCycles(200.0) / 5;
    SystemConfig vcsel = mod;
    vcsel.scheme = LinkScheme::kVcsel;

    const struct
    {
        const char *name;
        const SystemConfig *config;
    } cases[] = {
        {"non_pa", &base},     {"pa", &mod},
        {"pa_tv0", &no_tv},    {"pa_tbr0", &no_tbr},
        {"pa_no_delays", &no_delays}, {"tri_level", &tri},
        {"vcsel", &vcsel},
    };

    std::vector<TimelinePoint> points;
    for (const auto &c : cases) {
        TimelinePoint p;
        p.label = c.name;
        p.config = *c.config;
        p.spec = spec;
        p.total = kTotal;
        p.bin = kBin;
        p.seedKey = 0; // all cases see the identical traffic stream
        points.push_back(std::move(p));
    }
    // Trace the tri-level case: the only Fig. 6 configuration whose
    // trace carries laser VOA events alongside transitions and DVS.
    applyKernelArgs(args, points);
    markTracePoint(args, points, 5);

    std::printf("running %zu configurations over %llu cycles each...\n",
                points.size(), static_cast<unsigned long long>(kTotal));
    SweepRunner runner(runnerOptions(args));
    std::vector<TimelineOutcome> outcomes = runTimelines(runner, points);

    const TimelineResult &r_base = outcomes[0].timeline;
    const TimelineResult &r_mod = outcomes[1].timeline;
    const TimelineResult &r_no_tv = outcomes[2].timeline;
    const TimelineResult &r_no_tbr = outcomes[3].timeline;
    const TimelineResult &r_no_delays = outcomes[4].timeline;
    const TimelineResult &r_tri = outcomes[5].timeline;
    const TimelineResult &r_vcsel = outcomes[6].timeline;

    // (b) latency vs time, transition-delay ablation.
    {
        Table t("Fig 6(b): avg latency (cycles) over time, transition "
                "delay ablation",
                "fig6b_latency_transition_delays.csv",
                {"cycle", "non_pa", "pa", "pa_tv0", "pa_tbr0",
                 "pa_no_delays"});
        for (std::size_t i = 0; i < r_base.avgLatency.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r_base.avgLatency[i], r_mod.avgLatency[i],
                          r_no_tv.avgLatency[i],
                          r_no_tbr.avgLatency[i],
                          r_no_delays.avgLatency[i]},
                         1);
        }
        t.print();
        std::printf("   run averages: non_pa %.1f | pa %.1f | tv0 %.1f "
                    "| tbr0 %.1f | none %.1f cycles\n",
                    r_base.metrics.avgLatency, r_mod.metrics.avgLatency,
                    r_no_tv.metrics.avgLatency,
                    r_no_tbr.metrics.avgLatency,
                    r_no_delays.metrics.avgLatency);
    }

    // (c) single vs multiple optical power levels.
    {
        Table t("Fig 6(c): avg latency (cycles) over time, optical "
                "levels",
                "fig6c_latency_optical_levels.csv",
                {"cycle", "non_pa", "single_level", "three_levels"});
        for (std::size_t i = 0; i < r_base.avgLatency.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r_base.avgLatency[i], r_mod.avgLatency[i],
                          r_tri.avgLatency[i]},
                         1);
        }
        t.print();
        std::printf("   run averages: single %.1f | three %.1f cycles; "
                    "optical stalls (three-level): %llu\n",
                    r_mod.metrics.avgLatency, r_tri.metrics.avgLatency,
                    static_cast<unsigned long long>(
                        r_tri.metrics.opticalStalls));
    }

    // (d) VCSEL vs modulator power.
    {
        Table t("Fig 6(d): normalized power over time, VCSEL vs "
                "modulator",
                "fig6d_power_scheme.csv",
                {"cycle", "offered_rate", "modulator", "vcsel",
                 "modulator_tri"});
        for (std::size_t i = 0; i < r_mod.normalizedPower.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r_mod.offeredRate[i],
                          r_mod.normalizedPower[i],
                          r_vcsel.normalizedPower[i],
                          r_tri.normalizedPower[i]});
        }
        t.print();
        std::printf("   run averages: modulator %.3f | vcsel %.3f | "
                    "modulator_tri %.3f of baseline\n",
                    r_mod.metrics.normalizedPower,
                    r_vcsel.metrics.normalizedPower,
                    r_tri.metrics.normalizedPower);
    }

    writeSweepManifest("fig6_manifest.json", "fig6_hotspot", args.seed,
                       timelineRollups(outcomes));
    std::printf("   (manifest: fig6_manifest.json)\n");
    return exitStatus(outcomes);
}
