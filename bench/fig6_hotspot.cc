/**
 * @file
 * Regenerates Fig. 6 under the time-varying hot-spot trace:
 *
 *  (a) the injection-rate schedule itself;
 *  (b) average latency with and without the transition delays — the
 *      voltage-transition penalty should be ~free (voltage ramps while
 *      the link runs), and T_br = 20 cycles should barely matter at
 *      T_w = 1000;
 *  (c) latency with a single vs. three optical power levels on
 *      modulator links vs. the non-power-aware network — band
 *      crossings cost a 100 us optical wait;
 *  (d) normalized power of VCSEL- vs. modulator-based power-aware
 *      systems.
 *
 * The paper's trace spans ~1.5M cycles; we compress the same plateau
 * pattern into 300k cycles (documented in EXPERIMENTS.md).
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

namespace {

constexpr Cycle kTotal = 300000;
constexpr Cycle kBin = 10000;

TimelineResult
runCase(SystemConfig cfg, const TrafficSpec &spec)
{
    return runTimeline(cfg, spec, kTotal, kBin);
}

} // namespace

int
main()
{
    banner("Fig. 6", "time-varying hot-spot trace: transition-delay "
                     "ablation, optical levels, scheme comparison");

    TrafficSpec spec =
        TrafficSpec::hotspot(defaultHotspotSchedule(kTotal), 4, 41);

    // (a) the schedule.
    {
        Table t("Fig 6(a): offered injection rate over time",
                "fig6a_injection_schedule.csv",
                {"cycle", "packets_per_cycle"});
        for (const auto &ph : defaultHotspotSchedule(kTotal))
            t.rowNumeric({static_cast<double>(ph.start), ph.rate});
        t.print();
    }

    // Shared runs.
    SystemConfig base;
    base.powerAware = false;
    SystemConfig mod; // T_v=100, T_br=20 (defaults)
    SystemConfig no_tv = mod;
    no_tv.voltTransitionCycles = 0;
    SystemConfig no_tbr = mod;
    no_tbr.freqTransitionCycles = 0;
    SystemConfig no_delays = mod;
    no_delays.voltTransitionCycles = 0;
    no_delays.freqTransitionCycles = 0;
    SystemConfig tri = mod;
    tri.opticalMode = OpticalMode::kTriLevel;
    // The paper's trace spans ~1.5M cycles; ours is compressed 5x, so
    // the optical plant's 100 us response / 200 us decision epoch are
    // compressed by the same factor to preserve the ratio of optical
    // to traffic timescales that Fig. 6(c) illustrates.
    tri.laser.responseCycles = microsToCycles(100.0) / 5;
    tri.laser.decisionEpochCycles = microsToCycles(200.0) / 5;
    SystemConfig vcsel = mod;
    vcsel.scheme = LinkScheme::kVcsel;

    std::printf("running 7 configurations over %llu cycles each...\n",
                static_cast<unsigned long long>(kTotal));
    TimelineResult r_base = runCase(base, spec);
    std::printf("  non-power-aware done\n");
    TimelineResult r_mod = runCase(mod, spec);
    std::printf("  power-aware (Tv=100, Tbr=20) done\n");
    TimelineResult r_no_tv = runCase(no_tv, spec);
    std::printf("  Tv=0 done\n");
    TimelineResult r_no_tbr = runCase(no_tbr, spec);
    std::printf("  Tbr=0 done\n");
    TimelineResult r_no_delays = runCase(no_delays, spec);
    std::printf("  Tv=Tbr=0 done\n");
    TimelineResult r_tri = runCase(tri, spec);
    std::printf("  tri-level optical done\n");
    TimelineResult r_vcsel = runCase(vcsel, spec);
    std::printf("  vcsel done\n");

    // (b) latency vs time, transition-delay ablation.
    {
        Table t("Fig 6(b): avg latency (cycles) over time, transition "
                "delay ablation",
                "fig6b_latency_transition_delays.csv",
                {"cycle", "non_pa", "pa", "pa_tv0", "pa_tbr0",
                 "pa_no_delays"});
        for (std::size_t i = 0; i < r_base.avgLatency.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r_base.avgLatency[i], r_mod.avgLatency[i],
                          r_no_tv.avgLatency[i],
                          r_no_tbr.avgLatency[i],
                          r_no_delays.avgLatency[i]},
                         1);
        }
        t.print();
        std::printf("   run averages: non_pa %.1f | pa %.1f | tv0 %.1f "
                    "| tbr0 %.1f | none %.1f cycles\n",
                    r_base.metrics.avgLatency, r_mod.metrics.avgLatency,
                    r_no_tv.metrics.avgLatency,
                    r_no_tbr.metrics.avgLatency,
                    r_no_delays.metrics.avgLatency);
    }

    // (c) single vs multiple optical power levels.
    {
        Table t("Fig 6(c): avg latency (cycles) over time, optical "
                "levels",
                "fig6c_latency_optical_levels.csv",
                {"cycle", "non_pa", "single_level", "three_levels"});
        for (std::size_t i = 0; i < r_base.avgLatency.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r_base.avgLatency[i], r_mod.avgLatency[i],
                          r_tri.avgLatency[i]},
                         1);
        }
        t.print();
        std::printf("   run averages: single %.1f | three %.1f cycles; "
                    "optical stalls (three-level): %llu\n",
                    r_mod.metrics.avgLatency, r_tri.metrics.avgLatency,
                    static_cast<unsigned long long>(
                        r_tri.metrics.opticalStalls));
    }

    // (d) VCSEL vs modulator power.
    {
        Table t("Fig 6(d): normalized power over time, VCSEL vs "
                "modulator",
                "fig6d_power_scheme.csv",
                {"cycle", "offered_rate", "modulator", "vcsel",
                 "modulator_tri"});
        for (std::size_t i = 0; i < r_mod.normalizedPower.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r_mod.offeredRate[i],
                          r_mod.normalizedPower[i],
                          r_vcsel.normalizedPower[i],
                          r_tri.normalizedPower[i]});
        }
        t.print();
        std::printf("   run averages: modulator %.3f | vcsel %.3f | "
                    "modulator_tri %.3f of baseline\n",
                    r_mod.metrics.normalizedPower,
                    r_vcsel.metrics.normalizedPower,
                    r_tri.metrics.normalizedPower);
    }
    return 0;
}
