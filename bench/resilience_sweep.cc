/**
 * @file
 * Resilience sweep: goodput, latency, and power overhead under optical
 * faults (no counterpart figure in the paper — this probes the
 * robustness envelope of the Section 4.1 system).
 *
 * Two experiments on a 4x4 mesh (2 nodes per rack, west-first adaptive
 * routing):
 *
 *  1. BER-floor sweep. The additive BER floor models a degrading
 *     optical path (dirty connector, aging laser); the link layer
 *     detects corrupted flits by CRC and retransmits. Reported per
 *     floor: delivered goodput, average latency, normalized power, and
 *     the retry tax — for the non-power-aware baseline, the DVS
 *     policy, and DVS with the degradation clamp disabled (the
 *     ablation showing why scaling down on a noisy link is a trap:
 *     lower Vdd means less margin, more retries, more latency).
 *
 *  2. Hard-failure scenario. One inter-router link is killed
 *     mid-measurement. West-first adaptive routing routes around the
 *     dead port and keeps delivering (goodput stays nonzero); the
 *     deterministic XY ablation shows what breaks without the
 *     route-around: every wormhole whose fixed path crosses the dead
 *     link is dropped at the port and reclaimed by poison tails.
 *
 * All fault draws come from per-link streams derived from the sweep
 * seed, so results are bit-identical at any --jobs value.
 */

#include "bench_util.hh"

#include "core/poe_system.hh"

using namespace oenet;
using namespace oenet::bench;

namespace {

SystemConfig
smallMesh(RoutingAlgo routing, bool power_aware)
{
    SystemConfig c;
    c.meshX = 4;
    c.meshY = 4;
    c.clusterSize = 2;
    c.routing = routing;
    c.powerAware = power_aware;
    return c;
}

/** Index of the first inter-router link, discovered from a throwaway
 *  (fault-free) system so the bench never hardcodes the enumeration
 *  order. */
int
firstInterRouterLink(const SystemConfig &config)
{
    PoeSystem sys(config);
    for (std::size_t i = 0; i < sys.network().numLinks(); i++) {
        if (sys.network().linkSpec(i).kind == LinkKind::kInterRouter)
            return static_cast<int>(i);
    }
    fatal("resilience_sweep: no inter-router link in the mesh");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 47);
    banner("resilience sweep",
           "goodput/latency/power vs optical fault rate; hard-failure "
           "route-around");

    // The top floor puts the per-flit error rate (~6% at 16 bits) past
    // the DVS clamp threshold so the clamp's effect is visible in the
    // curves.
    const std::vector<double> floors =
        args.smoke ? std::vector<double>{0.0, 4e-3}
                   : std::vector<double>{0.0,  1e-6, 1e-5,
                                         1e-4, 1e-3, 4e-3};

    RunProtocol protocol;
    protocol.warmup = args.smoke ? 1000 : 5000;
    protocol.measure = args.smoke ? 4000 : 20000;
    protocol.drainLimit = args.smoke ? 4000 : 20000;
    const double rate = 0.8; // packets/cycle over the 32 nodes
    const Cycle killAt = protocol.warmup + protocol.measure / 2;

    struct Cfg
    {
        const char *name;
        SystemConfig config;
    };
    std::vector<Cfg> berCfgs = {
        {"non_pa", smallMesh(RoutingAlgo::kWestFirst, false)},
        {"pa_dvs", smallMesh(RoutingAlgo::kWestFirst, true)},
        {"pa_noclamp", smallMesh(RoutingAlgo::kWestFirst, true)},
    };
    // clamp_rate 1.0 can never be exceeded: the clamp stays silent and
    // the policy keeps scaling noisy links down (the ablation).
    berCfgs[2].config.fault.clampErrorRate = 1.0;

    std::vector<SweepPoint> points;
    for (std::size_t fi = 0; fi < floors.size(); fi++) {
        for (const Cfg &c : berCfgs) {
            SweepPoint p;
            p.label = "ber_floor=" + formatDouble(floors[fi], 6) + "/" +
                      c.name;
            p.params = {{"ber_floor", floors[fi]}};
            p.config = c.config;
            p.config.fault.enabled = true;
            p.config.fault.berFloor = floors[fi];
            p.spec = TrafficSpec::uniform(rate, 4);
            p.protocol = protocol;
            p.seedKey = fi; // configs at one floor share the stream
            points.push_back(std::move(p));
        }
    }

    // Hard-failure scenario: same link killed under adaptive west-first
    // and deterministic XY routing, plus the unfaulted reference.
    const int kill = firstInterRouterLink(
        smallMesh(RoutingAlgo::kWestFirst, false));
    struct KillCfg
    {
        const char *name;
        RoutingAlgo routing;
        bool kill;
    };
    const std::vector<KillCfg> killCfgs = {
        {"westfirst_ok", RoutingAlgo::kWestFirst, false},
        {"westfirst_kill", RoutingAlgo::kWestFirst, true},
        {"xy_kill", RoutingAlgo::kXY, true},
    };
    const std::size_t killBase = points.size();
    for (const KillCfg &k : killCfgs) {
        SweepPoint p;
        p.label = std::string("hardfail/") + k.name;
        p.params = {{"kill_link", k.kill ? kill : -1.0}};
        p.config = smallMesh(k.routing, false);
        p.config.fault.enabled = true;
        if (k.kill) {
            p.config.fault.killLink = kill;
            p.config.fault.killCycle = killAt;
        }
        p.spec = TrafficSpec::uniform(rate, 4);
        p.protocol = protocol;
        p.seedKey = floors.size(); // one shared stream for all three
        points.push_back(std::move(p));
    }
    applyKernelArgs(args, points);
    markTracePoint(args, points, killBase + 1); // westfirst_kill

    SweepRunner runner(runnerOptions(args));
    SweepReport report = runner.run(points);
    printReport(report);

    Table ber("Resilience: goodput/latency/power vs BER floor",
              "resilience_ber_sweep.csv",
              {"ber_floor", "cfg", "goodput_fpc", "avg_lat", "norm_pwr",
               "retries", "corrupted", "dvs_clamps"});
    for (std::size_t fi = 0; fi < floors.size(); fi++) {
        for (std::size_t ci = 0; ci < berCfgs.size(); ci++) {
            const RunMetrics &m =
                report.outcomes[fi * berCfgs.size() + ci].metrics;
            ber.row({formatDouble(floors[fi], 6), berCfgs[ci].name,
                     formatDouble(m.throughputFlitsPerCycle, 3),
                     formatDouble(m.avgLatency, 1),
                     formatDouble(m.normalizedPower, 3),
                     std::to_string(m.flitRetries),
                     std::to_string(m.flitsCorrupted),
                     std::to_string(m.dvsClamps)});
        }
    }
    ber.print();

    Table hard("Resilience: hard inter-router link failure at cycle " +
                   std::to_string(killAt),
               "resilience_hard_fail.csv",
               {"cfg", "goodput_fpc", "avg_lat", "failed_links",
                "drop_dead", "drop_flight", "poisoned", "pkts"});
    for (std::size_t ki = 0; ki < killCfgs.size(); ki++) {
        const RunMetrics &m = report.outcomes[killBase + ki].metrics;
        hard.row({killCfgs[ki].name,
                  formatDouble(m.throughputFlitsPerCycle, 3),
                  formatDouble(m.avgLatency, 1),
                  std::to_string(m.linkHardFailures),
                  std::to_string(m.flitsDroppedDeadPort),
                  std::to_string(m.flitsDroppedOnFail),
                  std::to_string(m.poisonedWormholes),
                  std::to_string(m.packetsMeasured)});
    }
    hard.print();

    writeSweepManifest("resilience_manifest.json", "resilience_sweep",
                       args.seed, report.outcomes);
    writeSweepManifestCsv("resilience_manifest.csv", report.outcomes);
    std::printf("   (manifest: resilience_manifest.json / .csv)\n");

    const RunMetrics &wk = report.outcomes[killBase + 1].metrics;
    std::printf("\nexpected shape: retries and latency climb with the "
                "BER floor, pa_noclamp worst; westfirst_kill keeps "
                "nonzero goodput around the dead link (got %.3f f/c, "
                "%d failed link%s).\n",
                wk.throughputFlitsPerCycle, wk.linkHardFailures,
                wk.linkHardFailures == 1 ? "" : "s");
    return exitStatus(report);
}
