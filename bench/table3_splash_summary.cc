/**
 * @file
 * Regenerates Table 3: average latency, power, and power-latency
 * product of the power-aware network normalized against the
 * non-power-aware network, for the FFT / LU / Radix traces.
 *
 * Paper values: latency x1.08 / 1.50 / 1.60; power x0.22 / 0.25 /
 * 0.23; PLP x0.24 / 0.38 / 0.37 — i.e. > 75% power saving at < 2x
 * latency, with FFT's slow phases tracked nearly for free.
 *
 * The paired runs are flattened into one sweep of six points (power-
 * aware + baseline per trace); each pair shares a seedKey so the
 * normalization compares runs over the identical traffic, exactly as
 * runPaired() did serially.
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 61);
    banner("Table 3", "power-performance on SPLASH-2 traces, "
                      "normalized to the non-power-aware network");

    const Cycle kDuration = args.smoke ? 120000 : 1200000;

    struct PaperRow
    {
        SplashKind kind;
        double lat, pwr, plp;
    };
    const PaperRow rows[] = {
        {SplashKind::kFft, 1.08, 0.22, 0.24},
        {SplashKind::kLu, 1.50, 0.25, 0.38},
        {SplashKind::kRadix, 1.60, 0.23, 0.37},
    };

    RunProtocol protocol;
    protocol.warmup = 0;
    protocol.measure = kDuration;
    protocol.drainLimit = args.smoke ? 60000 : 300000;

    std::vector<TraceData> traces;
    traces.reserve(std::size(rows));
    std::vector<SweepPoint> points;
    SystemConfig cfg; // modulator defaults + fabric flags
    applyFabricOverrides(args, cfg);
    for (std::size_t k = 0; k < std::size(rows); k++) {
        SplashSynthParams sp;
        sp.kind = rows[k].kind;
        sp.numNodes = cfg.numNodes();
        sp.duration = kDuration;
        sp.rateScale = 0.25;
        sp.seed = 61;
        traces.push_back(generateSplashTrace(sp));

        SweepPoint pa;
        pa.label = std::string(splashKindName(rows[k].kind)) + "/pa";
        pa.config = cfg;
        pa.spec = TrafficSpec::traceReplay(traces.back());
        pa.protocol = protocol;
        pa.seedKey = k;

        SweepPoint base = pa;
        base.label =
            std::string(splashKindName(rows[k].kind)) + "/baseline";
        base.config = baselineConfig(cfg);

        points.push_back(std::move(pa));
        points.push_back(std::move(base));
    }
    applyKernelArgs(args, points);
    markTracePoint(args, points, 0); // the FFT power-aware run

    SweepRunner runner(runnerOptions(args));
    SweepReport report = runner.run(points);
    printReport(report);

    Table t("Table 3: normalized power-performance",
            "table3_splash_summary.csv",
            {"trace", "latency_ratio", "power_ratio", "plp_ratio",
             "paper_latency", "paper_power", "paper_plp"});
    for (std::size_t k = 0; k < std::size(rows); k++) {
        const RunMetrics &pa = report.outcomes[2 * k].metrics;
        const RunMetrics &base = report.outcomes[2 * k + 1].metrics;
        NormalizedMetrics n = normalizeAgainst(pa, base);
        t.row({splashKindName(rows[k].kind),
               formatDouble(n.latencyRatio, 2),
               formatDouble(n.powerRatio, 2),
               formatDouble(n.plpRatio, 2),
               formatDouble(rows[k].lat, 2),
               formatDouble(rows[k].pwr, 2),
               formatDouble(rows[k].plp, 2)});
        std::printf("  %s: pa lat %.1f cyc, base lat %.1f cyc\n",
                    splashKindName(rows[k].kind), pa.avgLatency,
                    base.avgLatency);
    }
    t.print();

    writeSweepManifest("table3_manifest.json", "table3_splash_summary",
                       args.seed, report.outcomes);
    std::printf("   (manifest: table3_manifest.json)\n");

    std::printf("\npaper headline: >75%% average power saving, <2x "
                "latency, >60%% PLP saving.\n");
    return exitStatus(report);
}
