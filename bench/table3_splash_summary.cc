/**
 * @file
 * Regenerates Table 3: average latency, power, and power-latency
 * product of the power-aware network normalized against the
 * non-power-aware network, for the FFT / LU / Radix traces.
 *
 * Paper values: latency x1.08 / 1.50 / 1.60; power x0.22 / 0.25 /
 * 0.23; PLP x0.24 / 0.38 / 0.37 — i.e. > 75% power saving at < 2x
 * latency, with FFT's slow phases tracked nearly for free.
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

int
main()
{
    banner("Table 3", "power-performance on SPLASH-2 traces, "
                      "normalized to the non-power-aware network");

    constexpr Cycle kDuration = 1200000;

    Table t("Table 3: normalized power-performance",
            "table3_splash_summary.csv",
            {"trace", "latency_ratio", "power_ratio", "plp_ratio",
             "paper_latency", "paper_power", "paper_plp"});

    struct PaperRow
    {
        SplashKind kind;
        double lat, pwr, plp;
    };
    const PaperRow rows[] = {
        {SplashKind::kFft, 1.08, 0.22, 0.24},
        {SplashKind::kLu, 1.50, 0.25, 0.38},
        {SplashKind::kRadix, 1.60, 0.23, 0.37},
    };

    for (const auto &row : rows) {
        SplashSynthParams sp;
        sp.kind = row.kind;
        sp.numNodes = 512;
        sp.duration = kDuration;
        sp.rateScale = 0.25;
        sp.seed = 61;
        TraceData trace = generateSplashTrace(sp);

        RunProtocol protocol;
        protocol.warmup = 0;
        protocol.measure = kDuration;
        protocol.drainLimit = 300000;

        SystemConfig cfg; // modulator defaults
        PairedResult r = runPaired(
            cfg, TrafficSpec::traceReplay(trace), protocol);

        t.row({splashKindName(row.kind),
               formatDouble(r.normalized.latencyRatio, 2),
               formatDouble(r.normalized.powerRatio, 2),
               formatDouble(r.normalized.plpRatio, 2),
               formatDouble(row.lat, 2), formatDouble(row.pwr, 2),
               formatDouble(row.plp, 2)});
        std::printf("  %s done (pa lat %.1f cyc, base lat %.1f cyc)\n",
                    splashKindName(row.kind),
                    r.powerAware.avgLatency, r.baseline.avgLatency);
    }
    t.print();
    std::printf("\npaper headline: >75%% average power saving, <2x "
                "latency, >60%% PLP saving.\n");
    return 0;
}
