/**
 * @file
 * Regenerates Fig. 7: injection rate over time and normalized power
 * over time for the three SPLASH-2 workloads (FFT, LU, Radix) replayed
 * through the modulator-based power-aware system. The traces are
 * synthetic reconstructions of the RSIM captures (see
 * traffic/splash_synth.hh); mean packet size is 48 flits, as in the
 * paper.
 *
 * Expected shape: the power curve tracks the injection-rate curve but
 * smoother — the sliding-window policy filters small fluctuations —
 * and FFT (slow waves) is tracked best.
 *
 * The three traces are generated up front (the trace IS the workload;
 * its generator seed is fixed, not tied to --seed) and replayed as one
 * timeline sweep across the worker pool.
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 61);
    banner("Fig. 7", "SPLASH-2 traces (synthetic): injection rate and "
                     "normalized power over time");

    const Cycle kDuration =
        args.smoke ? 120000 : 1200000; ///< near the paper's trace span
    const Cycle kBin = args.smoke ? 10000 : 40000;
    constexpr double kRateScale = 0.25;

    const SplashKind kinds[] = {SplashKind::kFft, SplashKind::kLu,
                                SplashKind::kRadix};

    // Generate all traces before the sweep; TrafficSpec::traceReplay
    // keeps a pointer, so they must stay alive for the whole run.
    std::vector<TraceData> traces;
    traces.reserve(std::size(kinds));
    std::vector<TimelinePoint> points;
    SystemConfig base; // modulator, paper defaults + fabric flags
    applyFabricOverrides(args, base);
    for (SplashKind kind : kinds) {
        SplashSynthParams sp;
        sp.kind = kind;
        sp.numNodes = base.numNodes();
        sp.duration = kDuration;
        sp.rateScale = kRateScale;
        sp.seed = 61;
        traces.push_back(generateSplashTrace(sp));

        TimelinePoint p;
        p.label = splashKindName(kind);
        p.config = base;
        p.spec = TrafficSpec::traceReplay(traces.back());
        p.total = kDuration;
        p.bin = kBin;
        points.push_back(std::move(p));
    }
    applyKernelArgs(args, points);
    markTracePoint(args, points, 0); // the FFT replay

    SweepRunner runner(runnerOptions(args));
    std::vector<TimelineOutcome> outcomes = runTimelines(runner, points);

    for (std::size_t k = 0; k < outcomes.size(); k++) {
        const TimelineResult &r = outcomes[k].timeline;
        std::string name = splashKindName(kinds[k]);
        Table t("Fig 7 (" + name + "): injection rate and normalized "
                "power over time",
                "fig7_" + name + "_timeline.csv",
                {"cycle", "injection_rate", "normalized_power",
                 "avg_latency"});
        for (std::size_t i = 0; i < r.offeredRate.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r.offeredRate[i], r.normalizedPower[i],
                          r.avgLatency[i]});
        }
        t.print();
        std::printf("   %s: mean packet %.1f flits, %zu packets, "
                    "run-average power %.3f of baseline\n",
                    name.c_str(), traceMeanPacketLen(traces[k]),
                    traces[k].size(), r.metrics.normalizedPower);
    }

    writeSweepManifest("fig7_manifest.json", "fig7_splash", args.seed,
                       timelineRollups(outcomes));
    std::printf("   (manifest: fig7_manifest.json)\n");
    return exitStatus(outcomes);
}
