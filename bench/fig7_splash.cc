/**
 * @file
 * Regenerates Fig. 7: injection rate over time and normalized power
 * over time for the three SPLASH-2 workloads (FFT, LU, Radix) replayed
 * through the modulator-based power-aware system. The traces are
 * synthetic reconstructions of the RSIM captures (see
 * traffic/splash_synth.hh); mean packet size is 48 flits, as in the
 * paper.
 *
 * Expected shape: the power curve tracks the injection-rate curve but
 * smoother — the sliding-window policy filters small fluctuations —
 * and FFT (slow waves) is tracked best.
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

namespace {

constexpr Cycle kDuration = 1200000; ///< near the paper's trace span
constexpr Cycle kBin = 40000;
constexpr double kRateScale = 0.25;

} // namespace

int
main()
{
    banner("Fig. 7", "SPLASH-2 traces (synthetic): injection rate and "
                     "normalized power over time");

    for (auto kind :
         {SplashKind::kFft, SplashKind::kLu, SplashKind::kRadix}) {
        SplashSynthParams sp;
        sp.kind = kind;
        sp.numNodes = 512;
        sp.duration = kDuration;
        sp.rateScale = kRateScale;
        sp.seed = 61;
        TraceData trace = generateSplashTrace(sp);

        SystemConfig cfg; // modulator, paper defaults
        TimelineResult r = runTimeline(
            cfg, TrafficSpec::traceReplay(trace), kDuration, kBin);

        std::string name = splashKindName(kind);
        Table t("Fig 7 (" + name + "): injection rate and normalized "
                "power over time",
                "fig7_" + name + "_timeline.csv",
                {"cycle", "injection_rate", "normalized_power",
                 "avg_latency"});
        for (std::size_t i = 0; i < r.offeredRate.size(); i++) {
            t.rowNumeric({static_cast<double>(i * kBin),
                          r.offeredRate[i], r.normalizedPower[i],
                          r.avgLatency[i]});
        }
        t.print();
        std::printf("   %s: mean packet %.1f flits, %zu packets, "
                    "run-average power %.3f of baseline\n",
                    name.c_str(), traceMeanPacketLen(trace),
                    trace.size(), r.metrics.normalizedPower);
    }
    return 0;
}
