/**
 * @file
 * Regenerates Table 2: per-component link power at the full operating
 * point (10 Gb/s, 1.8 V) with each component's scaling trend, plus the
 * power of both link schemes across the 6-level 5-10 Gb/s table —
 * including the paper's quoted 61.25 mW VCSEL link at 5 Gb/s — and a
 * cross-check of the trend model against the full Eqs. 1-9 component
 * models.
 */

#include "bench_util.hh"
#include "phy/bitrate_levels.hh"
#include "phy/link_power.hh"
#include "phy/modulator.hh"
#include "phy/receiver.hh"
#include "phy/vcsel.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    // Analytical tables only — no simulation, so --jobs/--seed have
    // nothing to act on; parsed anyway so the CLI matches the other
    // benches.
    parseBenchArgs(argc, argv, 1);
    banner("Table 2", "Power consumption and scaling trends of the "
                      "link components");

    {
        Table t("Table 2: component budget at 10 Gb/s, 1.8 V",
                "table2_components.csv",
                {"component", "power_mW", "scaling"});
        LinkPowerModel vcsel(LinkScheme::kVcsel);
        LinkPowerModel mod(LinkScheme::kModulator);
        auto dv = vcsel.breakdown(10.0, 1.8);
        auto dm = mod.breakdown(10.0, 1.8);
        t.row({"VCSEL", formatDouble(dv.txLaserMw, 1), "~Vdd"});
        t.row({"VCSEL driver", formatDouble(dv.txDriverMw, 1),
               "Vdd^2*BR"});
        t.row({"Modulator driver", formatDouble(dm.txDriverMw, 1),
               "BR"});
        t.row({"TIA", formatDouble(dv.tiaMw, 1), "Vdd*BR"});
        t.row({"CDR", formatDouble(dv.cdrMw, 1), "Vdd^2*BR"});
        t.row({"Photodetector", formatDouble(dv.detectorMw, 2),
               "~optical"});
        t.row({"total (VCSEL link)", formatDouble(dv.totalMw, 1), ""});
        t.row({"total (modulator link)", formatDouble(dm.totalMw, 1),
               ""});
        t.print();
    }

    {
        Table t("Link power across the 6-level 5-10 Gb/s table",
                "table2_levels.csv",
                {"br_gbps", "vdd_v", "vcsel_mW", "modulator_mW",
                 "vcsel_saving", "modulator_saving"});
        auto levels = BitrateLevelTable::linear(5.0, 10.0, 6);
        LinkPowerModel vcsel(LinkScheme::kVcsel);
        LinkPowerModel mod(LinkScheme::kModulator);
        for (int i = 0; i < levels.numLevels(); i++) {
            const auto &lv = levels.level(i);
            double pv = vcsel.powerMw(lv.brGbps, lv.vddV);
            double pm = mod.powerMw(lv.brGbps, lv.vddV);
            t.rowNumeric({lv.brGbps, lv.vddV, pv, pm,
                          1.0 - pv / vcsel.maxPowerMw(),
                          1.0 - pm / mod.maxPowerMw()});
        }
        t.print();
        std::printf("   paper quotes: 290 mW/link at 10 Gb/s, 61.25 mW "
                    "VCSEL link at 5 Gb/s (~80%% saving)\n");
    }

    {
        Table t("Trend model vs. physical Eqs. 1-9 (VCSEL link, "
                "no detector)",
                "table2_crosscheck.csv",
                {"br_gbps", "trend_mW", "equations_mW", "ratio"});
        LinkPowerModel trend(LinkScheme::kVcsel);
        Vcsel vcsel;
        VcselDriver driver;
        Tia tia;
        Cdr cdr;
        for (double br : {5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
            double v = 1.8 * br / 10.0;
            double physical = vcsel.averagePowerMw(v) +
                              driver.powerMw(v, br) +
                              tia.powerMw(br, v) + cdr.powerMw(v, br);
            double modeled = trend.powerMw(br, v) -
                             trend.breakdown(br, v).detectorMw;
            t.rowNumeric({br, modeled, physical, modeled / physical});
        }
        t.print();
    }
    return 0;
}
