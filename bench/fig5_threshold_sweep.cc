/**
 * @file
 * Regenerates Fig. 5(d)(e)(f): normalized latency, power, and
 * power-latency product versus the average link-utilization threshold,
 * with T_H - T_L fixed at 0.1 (the paper's choice), under uniform
 * random traffic at 1.25 / 3.3 / 5.05 packets/cycle.
 *
 * Expected shape: higher thresholds scale more aggressively — more
 * latency, less power — most visibly at the medium rate; at light load
 * the network pins at the bottom anyway, and at saturation queueing
 * masks the extra link delay.
 *
 * The three baselines and all threshold variants run as one sweep;
 * every point at rate i carries seedKey i so each variant is
 * normalized against a baseline that saw the identical traffic.
 */

#include "bench_util.hh"

using namespace oenet;
using namespace oenet::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv, 23);
    banner("Fig. 5(d)(e)(f)",
           "latency / power / power-latency product vs. average link "
           "utilization threshold (T_H - T_L = 0.1)");

    const std::vector<double> avg_thresholds =
        args.smoke ? std::vector<double>{0.45, 0.65}
                   : std::vector<double>{0.35, 0.45, 0.55, 0.65};
    const std::vector<double> rates = {1.25, 3.3, 5.05};

    RunProtocol protocol;
    protocol.warmup = args.smoke ? 2000 : 15000;
    protocol.measure = args.smoke ? 5000 : 30000;
    protocol.drainLimit = args.smoke ? 5000 : 30000;

    // Point layout: one baseline per rate, then thresholds x rates.
    std::vector<SweepPoint> points;
    for (std::size_t i = 0; i < rates.size(); i++) {
        SweepPoint p;
        p.label = "baseline/rate=" + formatDouble(rates[i], 2);
        p.params = {{"rate", rates[i]}};
        p.config.powerAware = false;
        p.spec = TrafficSpec::uniform(rates[i], 4);
        p.protocol = protocol;
        p.seedKey = i;
        points.push_back(std::move(p));
    }
    for (double th : avg_thresholds) {
        for (std::size_t i = 0; i < rates.size(); i++) {
            SweepPoint p;
            p.label = "thresh=" + formatDouble(th, 2) +
                      "/rate=" + formatDouble(rates[i], 2);
            p.params = {{"avg_thresh", th}, {"rate", rates[i]}};
            // T_L = th - 0.05, T_H = th + 0.05; keep the congested
            // set's offset from Table 1 (+0.2 low, +0.1 high).
            p.config.policy.thLowUncongested = th - 0.05;
            p.config.policy.thHighUncongested = th + 0.05;
            p.config.policy.thLowCongested = th + 0.15;
            p.config.policy.thHighCongested = th + 0.25;
            p.spec = TrafficSpec::uniform(rates[i], 4);
            p.protocol = protocol;
            p.seedKey = i;
            points.push_back(std::move(p));
        }
    }
    // Trace the first power-aware point at the middle rate (the
    // baselines ahead of it never change level).
    applyKernelArgs(args, points);
    markTracePoint(args, points, rates.size() + 1);

    SweepRunner runner(runnerOptions(args));
    SweepReport report = runner.run(points);
    printReport(report);

    Table lat("Fig 5(d): normalized latency vs threshold",
              "fig5d_latency_vs_threshold.csv",
              {"avg_thresh", "rate1.25", "rate3.3", "rate5.05"});
    Table pwr("Fig 5(e): normalized power vs threshold",
              "fig5e_power_vs_threshold.csv",
              {"avg_thresh", "rate1.25", "rate3.3", "rate5.05"});
    Table plp("Fig 5(f): normalized PLP vs threshold",
              "fig5f_plp_vs_threshold.csv",
              {"avg_thresh", "rate1.25", "rate3.3", "rate5.05"});

    for (std::size_t ti = 0; ti < avg_thresholds.size(); ti++) {
        double th = avg_thresholds[ti];
        std::vector<double> lrow{th}, prow{th}, plprow{th};
        for (std::size_t i = 0; i < rates.size(); i++) {
            const RunMetrics &baseline = report.outcomes[i].metrics;
            const RunMetrics &m =
                report.outcomes[rates.size() * (1 + ti) + i].metrics;
            NormalizedMetrics n = normalizeAgainst(m, baseline);
            lrow.push_back(n.latencyRatio);
            prow.push_back(n.powerRatio);
            plprow.push_back(n.plpRatio);
        }
        lat.rowNumeric(lrow);
        pwr.rowNumeric(prow);
        plp.rowNumeric(plprow);
    }
    lat.print();
    pwr.print();
    plp.print();

    writeSweepManifest("fig5def_manifest.json", "fig5_threshold_sweep",
                       args.seed, report.outcomes);
    writeSweepManifestCsv("fig5def_manifest.csv", report.outcomes);
    std::printf("   (manifest: fig5def_manifest.json / .csv)\n");

    std::printf("\npaper choice: average threshold 0.5 balances "
                "power-performance; 0.6 buys more savings at higher "
                "latency.\n");
    return exitStatus(report);
}
