/**
 * @file
 * Regenerates Fig. 5(d)(e)(f): normalized latency, power, and
 * power-latency product versus the average link-utilization threshold,
 * with T_H - T_L fixed at 0.1 (the paper's choice), under uniform
 * random traffic at 1.25 / 3.3 / 5.05 packets/cycle.
 *
 * Expected shape: higher thresholds scale more aggressively — more
 * latency, less power — most visibly at the medium rate; at light load
 * the network pins at the bottom anyway, and at saturation queueing
 * masks the extra link delay.
 */

#include "bench_util.hh"
#include "core/sweeps.hh"

using namespace oenet;
using namespace oenet::bench;

int
main()
{
    banner("Fig. 5(d)(e)(f)",
           "latency / power / power-latency product vs. average link "
           "utilization threshold (T_H - T_L = 0.1)");

    const std::vector<double> avg_thresholds = {0.35, 0.45, 0.55, 0.65};
    const std::vector<double> rates = {1.25, 3.3, 5.05};

    RunProtocol protocol;
    protocol.warmup = 15000;
    protocol.measure = 30000;
    protocol.drainLimit = 30000;

    std::vector<RunMetrics> baselines;
    for (double rate : rates) {
        SystemConfig base;
        base.powerAware = false;
        baselines.push_back(runExperiment(
            base, TrafficSpec::uniform(rate, 4, 23), protocol));
    }

    Table lat("Fig 5(d): normalized latency vs threshold",
              "fig5d_latency_vs_threshold.csv",
              {"avg_thresh", "rate1.25", "rate3.3", "rate5.05"});
    Table pwr("Fig 5(e): normalized power vs threshold",
              "fig5e_power_vs_threshold.csv",
              {"avg_thresh", "rate1.25", "rate3.3", "rate5.05"});
    Table plp("Fig 5(f): normalized PLP vs threshold",
              "fig5f_plp_vs_threshold.csv",
              {"avg_thresh", "rate1.25", "rate3.3", "rate5.05"});

    for (double th : avg_thresholds) {
        std::vector<double> lrow{th}, prow{th}, plprow{th};
        for (std::size_t i = 0; i < rates.size(); i++) {
            SystemConfig cfg;
            // T_L = th - 0.05, T_H = th + 0.05; keep the congested
            // set's offset from Table 1 (+0.2 low, +0.1 high).
            cfg.policy.thLowUncongested = th - 0.05;
            cfg.policy.thHighUncongested = th + 0.05;
            cfg.policy.thLowCongested = th + 0.15;
            cfg.policy.thHighCongested = th + 0.25;
            RunMetrics m = runExperiment(
                cfg, TrafficSpec::uniform(rates[i], 4, 23), protocol);
            NormalizedMetrics n = normalizeAgainst(m, baselines[i]);
            lrow.push_back(n.latencyRatio);
            prow.push_back(n.powerRatio);
            plprow.push_back(n.plpRatio);
        }
        lat.rowNumeric(lrow);
        pwr.rowNumeric(prow);
        plp.rowNumeric(plprow);
    }
    lat.print();
    pwr.print();
    plp.print();
    std::printf("\npaper choice: average threshold 0.5 balances "
                "power-performance; 0.6 buys more savings at higher "
                "latency.\n");
    return 0;
}
